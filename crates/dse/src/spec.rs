//! Plain-text sweep specifications — the `.dse` format.
//!
//! Line-oriented like the `noc-graph` formats; `#` starts a comment.
//! Directives:
//!
//! ```text
//! # VOPD and two random 25-core graphs, on mesh and torus, two mappers.
//! capacity 1000              # uniform link capacity, MB/s (default 1000)
//! seed 42                    # root seed for derived scenario seeds
//! app vopd mpeg4             # mpeg4|vopd|pip|mwa|mwag|dsd|dsp|all
//! random 25 2                # cores instances [avg_degree [min_bw max_bw]]
//! topology mesh 4x4          # fit | fit-torus | fit3d | fit3d-torus |
//! topology mesh 4x4x2        #   mesh WxH[xD...] | torus WxH[xD...]
//! mapper nmap pbb            # nmap|nmap-paper|nmap-init|nmap-split-quadrant|
//!                            #   nmap-split-all|pmap|gmap|pbb|sa|tabu|
//!                            #   all (= nmap pmap gmap pbb only)
//! routing min-path xy        # min-path|xy|mcf-quadrant|mcf-all|all
//! simulate {                 # optional wormhole-simulation stage
//!   bandwidths 1100 1400     # link-bandwidth sweep points, MB/s
//!                            #   (omit to simulate at `capacity`)
//!   warmup 20000             # cycles excluded from statistics
//!   measure 100000           # measured cycles (must be > 0)
//!   drain 30000              # drain window after measurement
//!   burst 8 3                # mean burst packets, peak-to-mean ratio
//!   seed 0                   # traffic-seed component
//!   loop event-queue         # event-queue|hybrid|active-set|full-scan
//! }
//! ```
//!
//! `app`, `mapper` and `routing` accept several names per line and may
//! repeat; `all` expands to the six bundled apps, the four mapper families
//! (`nmap pmap gmap pbb` — deliberately *not* the whole registry: the
//! paper's Figure 3 comparison set, cheap enough for wide cross
//! products; name `sa`, `tabu` or the `nmap-split-*` mappers explicitly
//! to sweep them), or all four routing regimes. Axes left out
//! default to the fitted mesh, `nmap`, and `min-path`. Mapper
//! configurations beyond the named defaults use a `[..]` parameter
//! suffix: `nmap[p4r2]` (passes/restarts), `nmap-split-quadrant[p3]`
//! (passes), `pbb[q5000e50000]` (queue/expansion budget),
//! `sa[m20000t0.05c0.9995]` (moves / initial-temperature fraction /
//! cooling), `tabu[i64t8]` (iterations/tenure). Mapper options are
//! validated at parse time with the same `check()` predicates the
//! mappers themselves run — an out-of-range knob (e.g. `nmap[p0r1]`) is
//! a syntax error naming the offending line, never a silent clamp. The
//! `simulate`
//! block (at most one; every field optional, defaulting to
//! [`SimulateSpec::default`]) attaches a simulation stage to every
//! scenario; named `bandwidths` become the innermost sweep axis, one
//! scenario per point with `capacity` = the point. [`SweepSpec`]'s
//! `Display` writes the canonical form; parsing it back yields an equal
//! spec for *every* representable configuration (round-trip property,
//! tested).

use std::error::Error;
use std::fmt;

use nmap::search::{SaOptions, TabuOptions};
use nmap::{PathScope, SinglePathOptions};
use noc_apps::App;
use noc_baselines::PbbOptions;
use noc_graph::RandomGraphConfig;
use noc_sim::LoopKind;

use noc_units::Mbps;

use crate::scenario::{MapperSpec, RoutingSpec, ScenarioSet, SimulateSpec, TopologySpec};

/// One application directive of a spec.
#[derive(Debug, Clone, PartialEq)]
pub enum AppDirective {
    /// A bundled video application.
    Bundled(App),
    /// The DSP filter.
    Dsp,
    /// `instances` random graphs from one generator configuration.
    Random {
        /// Generator configuration (cores, degree, bandwidth range).
        config: RandomGraphConfig,
        /// Number of instances (scenario seeds derive from the root seed).
        instances: u64,
    },
}

/// A parsed sweep specification. Feed to [`SweepSpec::scenarios`] to
/// expand into a concrete [`ScenarioSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Uniform link capacity.
    pub capacity: Mbps,
    /// Root seed for derived scenario seeds.
    pub root_seed: u64,
    /// Applications, in directive order.
    pub apps: Vec<AppDirective>,
    /// Topology axis (empty → fitted mesh).
    pub topologies: Vec<TopologySpec>,
    /// Mapper axis (empty → `nmap`).
    pub mappers: Vec<MapperSpec>,
    /// Routing axis (empty → `min-path`).
    pub routings: Vec<RoutingSpec>,
    /// Optional simulation stage; bandwidth points expand as the innermost
    /// sweep axis.
    pub simulate: Option<SimulateSpec>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self {
            capacity: Mbps::raw(1_000.0),
            root_seed: 0,
            apps: Vec::new(),
            topologies: Vec::new(),
            mappers: Vec::new(),
            routings: Vec::new(),
            simulate: None,
        }
    }
}

impl SweepSpec {
    /// Expands the spec into the ordered scenario cross product.
    pub fn scenarios(&self) -> ScenarioSet {
        let mut builder =
            ScenarioSet::builder().capacity(self.capacity.to_f64()).root_seed(self.root_seed);
        for app in &self.apps {
            builder = match app {
                AppDirective::Bundled(a) => builder.app(*a),
                AppDirective::Dsp => builder.dsp(),
                AppDirective::Random { config, instances } => {
                    builder.random(config.clone(), *instances)
                }
            };
        }
        for t in &self.topologies {
            builder = builder.topology(t.clone());
        }
        for m in &self.mappers {
            builder = builder.mapper(m.clone());
        }
        for r in &self.routings {
            builder = builder.routing(*r);
        }
        if let Some(sim) = &self.simulate {
            builder = builder.simulate(sim.clone());
        }
        builder.build()
    }
}

impl fmt::Display for SweepSpec {
    /// Canonical spec form: one directive per line, axes in fixed order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "capacity {}", self.capacity)?;
        writeln!(f, "seed {}", self.root_seed)?;
        for app in &self.apps {
            match app {
                AppDirective::Bundled(a) => writeln!(f, "app {}", app_keyword(*a))?,
                AppDirective::Dsp => writeln!(f, "app dsp")?,
                AppDirective::Random { config, instances } => writeln!(
                    f,
                    "random {} {} {} {} {}",
                    config.cores,
                    instances,
                    config.avg_degree,
                    config.min_bandwidth,
                    config.max_bandwidth
                )?,
            }
        }
        for t in &self.topologies {
            writeln!(f, "topology {}", t.name())?;
        }
        for m in &self.mappers {
            writeln!(f, "mapper {}", m.name())?;
        }
        for r in &self.routings {
            writeln!(f, "routing {}", r.name())?;
        }
        if let Some(sim) = &self.simulate {
            writeln!(f, "simulate {{")?;
            if !sim.bandwidths_mbps.is_empty() {
                write!(f, "  bandwidths")?;
                for bw in &sim.bandwidths_mbps {
                    write!(f, " {bw}")?;
                }
                writeln!(f)?;
            }
            writeln!(f, "  warmup {}", sim.warmup_cycles)?;
            writeln!(f, "  measure {}", sim.measure_cycles)?;
            writeln!(f, "  drain {}", sim.drain_cycles)?;
            writeln!(f, "  burst {} {}", sim.burst_packets, sim.burst_intensity)?;
            writeln!(f, "  seed {}", sim.seed)?;
            writeln!(f, "  loop {}", loop_kind_keyword(sim.loop_kind))?;
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

/// Errors produced by [`parse_spec`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A line could not be interpreted.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The spec declared no applications.
    Empty,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            SpecError::Empty => write!(f, "spec declares no applications"),
        }
    }
}

impl Error for SpecError {}

/// Parses the spec format described in the [module docs](self).
///
/// # Errors
///
/// [`SpecError::Syntax`] with the offending 1-based line on malformed
/// input; [`SpecError::Empty`] when no `app`/`random` directive appears.
pub fn parse_spec(text: &str) -> Result<SweepSpec, SpecError> {
    let mut spec = SweepSpec::default();
    // `Some` while inside an open `simulate { ... }` block.
    let mut sim_block: Option<SimulateSpec> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty line");
        let rest: Vec<&str> = parts.collect();
        if let Some(block) = sim_block.as_mut() {
            if keyword == "}" {
                if !rest.is_empty() {
                    return Err(syntax(line_no, "`}` must stand alone".into()));
                }
                spec.simulate = sim_block.take();
            } else {
                parse_simulate_field(block, keyword, &rest, line_no)?;
            }
            continue;
        }
        match keyword {
            "capacity" => {
                let v: f64 = parse_one(&rest, line_no, "capacity")?;
                spec.capacity = Mbps::positive(v)
                    .map_err(|_| syntax(line_no, format!("capacity must be positive, got {v}")))?;
            }
            "seed" => spec.root_seed = parse_one(&rest, line_no, "seed")?,
            "app" => {
                if rest.is_empty() {
                    return Err(syntax(line_no, "`app` needs at least one name".into()));
                }
                for name in rest {
                    match name {
                        "all" => {
                            spec.apps.extend(App::all().into_iter().map(AppDirective::Bundled))
                        }
                        "dsp" => spec.apps.push(AppDirective::Dsp),
                        _ => spec
                            .apps
                            .push(AppDirective::Bundled(parse_app(name).ok_or_else(|| {
                                syntax(line_no, format!("unknown app `{name}`"))
                            })?)),
                    }
                }
            }
            "random" => {
                if rest.len() < 2 || rest.len() == 4 || rest.len() > 5 {
                    return Err(syntax(
                        line_no,
                        "`random` takes: cores instances [avg_degree [min_bw max_bw]]".into(),
                    ));
                }
                let cores: usize = parse_field(rest[0], line_no, "cores")?;
                let instances: u64 = parse_field(rest[1], line_no, "instances")?;
                let mut config = RandomGraphConfig { cores, ..Default::default() };
                if rest.len() >= 3 {
                    config.avg_degree = parse_field(rest[2], line_no, "avg_degree")?;
                }
                if rest.len() == 5 {
                    let min_bw: f64 = parse_field(rest[3], line_no, "min_bw")?;
                    let max_bw: f64 = parse_field(rest[4], line_no, "max_bw")?;
                    let invalid = |_| syntax(line_no, "invalid `random` parameters".into());
                    config.min_bandwidth = Mbps::new(min_bw).map_err(invalid)?;
                    config.max_bandwidth = Mbps::new(max_bw).map_err(invalid)?;
                }
                if cores == 0
                    || instances == 0
                    || !(config.avg_degree.is_finite() && config.avg_degree > 0.0)
                    || config.max_bandwidth < config.min_bandwidth
                {
                    return Err(syntax(line_no, "invalid `random` parameters".into()));
                }
                spec.apps.push(AppDirective::Random { config, instances });
            }
            "topology" => {
                let t = match rest.as_slice() {
                    ["fit"] => TopologySpec::FitMesh,
                    ["fit-torus"] => TopologySpec::FitTorus,
                    ["fit3d"] => TopologySpec::FitMesh3d,
                    ["fit3d-torus"] => TopologySpec::FitTorus3d,
                    [kind @ ("mesh" | "torus"), dims] => {
                        let dims = parse_dims(dims, line_no)?;
                        if *kind == "mesh" {
                            TopologySpec::Mesh { dims }
                        } else {
                            TopologySpec::Torus { dims }
                        }
                    }
                    _ => {
                        return Err(syntax(
                            line_no,
                            "`topology` takes: fit | fit-torus | fit3d | fit3d-torus | \
mesh WxH[xD] | torus WxH[xD]"
                                .into(),
                        ))
                    }
                };
                spec.topologies.push(t);
            }
            "mapper" => {
                if rest.is_empty() {
                    return Err(syntax(line_no, "`mapper` needs at least one name".into()));
                }
                for name in rest {
                    if name == "all" {
                        spec.mappers.extend([
                            MapperSpec::Nmap(SinglePathOptions::default()),
                            MapperSpec::Pmap,
                            MapperSpec::Gmap,
                            MapperSpec::Pbb(PbbOptions::default()),
                        ]);
                    } else {
                        spec.mappers
                            .push(parse_mapper(name).map_err(|message| syntax(line_no, message))?);
                    }
                }
            }
            "routing" => {
                if rest.is_empty() {
                    return Err(syntax(line_no, "`routing` needs at least one name".into()));
                }
                for name in rest {
                    if name == "all" {
                        spec.routings.extend([
                            RoutingSpec::MinPath,
                            RoutingSpec::Xy,
                            RoutingSpec::McfQuadrant,
                            RoutingSpec::McfAllPaths,
                        ]);
                    } else {
                        spec.routings.push(
                            parse_routing(name).ok_or_else(|| {
                                syntax(line_no, format!("unknown routing `{name}`"))
                            })?,
                        );
                    }
                }
            }
            "simulate" => {
                if rest != ["{"] {
                    return Err(syntax(line_no, "`simulate` takes an opening `{`".into()));
                }
                if spec.simulate.is_some() {
                    return Err(syntax(line_no, "duplicate `simulate` block".into()));
                }
                sim_block = Some(SimulateSpec::default());
            }
            other => {
                return Err(syntax(
                    line_no,
                    format!(
                        "unknown keyword `{other}` (expected capacity/seed/app/random/\
topology/mapper/routing/simulate)"
                    ),
                ));
            }
        }
    }
    if sim_block.is_some() {
        return Err(SpecError::Syntax {
            line: text.lines().count(),
            message: "unclosed `simulate` block (missing `}`)".into(),
        });
    }
    if spec.apps.is_empty() {
        return Err(SpecError::Empty);
    }
    Ok(spec)
}

/// Parses one line inside a `simulate { ... }` block.
fn parse_simulate_field(
    block: &mut SimulateSpec,
    keyword: &str,
    rest: &[&str],
    line_no: usize,
) -> Result<(), SpecError> {
    match keyword {
        "bandwidths" => {
            if rest.is_empty() {
                return Err(syntax(line_no, "`bandwidths` needs at least one value".into()));
            }
            let mut points = Vec::with_capacity(rest.len());
            for text in rest {
                let bw: f64 = parse_field(text, line_no, "bandwidth")?;
                let bw = Mbps::positive(bw).map_err(|_| {
                    syntax(line_no, format!("bandwidth must be positive, got {bw}"))
                })?;
                points.push(bw);
            }
            block.bandwidths_mbps = points;
        }
        "warmup" => block.warmup_cycles = parse_one(rest, line_no, "warmup")?,
        "measure" => {
            let v: u64 = parse_one(rest, line_no, "measure")?;
            if v == 0 {
                return Err(syntax(line_no, "measurement window must be non-empty".into()));
            }
            block.measure_cycles = v;
        }
        "drain" => block.drain_cycles = parse_one(rest, line_no, "drain")?,
        "burst" => {
            let (packets, intensity): (u32, f64) = match rest {
                [p, i] => (
                    parse_field(p, line_no, "burst packets")?,
                    parse_field(i, line_no, "burst intensity")?,
                ),
                _ => {
                    return Err(syntax(line_no, "`burst` takes: packets intensity".into()));
                }
            };
            if packets == 0 || !(intensity.is_finite() && intensity >= 1.0) {
                return Err(syntax(
                    line_no,
                    "burst needs packets ≥ 1 and a finite intensity ≥ 1".into(),
                ));
            }
            block.burst_packets = packets;
            block.burst_intensity = intensity;
        }
        "seed" => block.seed = parse_one(rest, line_no, "seed")?,
        "loop" => {
            let name = match rest {
                [one] => *one,
                _ => return Err(syntax(line_no, "`loop` takes exactly one value".into())),
            };
            block.loop_kind = parse_loop_kind(name).ok_or_else(|| {
                syntax(
                    line_no,
                    format!(
                        "unknown loop kind `{name}` \
                         (expected event-queue/hybrid/active-set/full-scan)"
                    ),
                )
            })?;
        }
        other => {
            return Err(syntax(
                line_no,
                format!(
                    "unknown simulate field `{other}` (expected bandwidths/warmup/measure/\
drain/burst/seed/loop or `}}`)"
                ),
            ));
        }
    }
    Ok(())
}

fn syntax(line: usize, message: String) -> SpecError {
    SpecError::Syntax { line, message }
}

fn parse_one<T: std::str::FromStr>(rest: &[&str], line: usize, what: &str) -> Result<T, SpecError> {
    match rest {
        [one] => parse_field(one, line, what),
        _ => Err(syntax(line, format!("`{what}` takes exactly one value"))),
    }
}

fn parse_field<T: std::str::FromStr>(text: &str, line: usize, what: &str) -> Result<T, SpecError> {
    text.parse().map_err(|_| syntax(line, format!("invalid {what} `{text}`")))
}

fn parse_dims(text: &str, line: usize) -> Result<Vec<usize>, SpecError> {
    let parts: Vec<&str> = text.split('x').collect();
    if parts.len() < 2 || parts.len() > noc_graph::parse::MAX_GRID_RANK {
        return Err(syntax(
            line,
            format!(
                "bad dimensions `{text}`, want 2 to {} `x`-separated extents",
                noc_graph::parse::MAX_GRID_RANK
            ),
        ));
    }
    let mut dims = Vec::with_capacity(parts.len());
    for part in parts {
        let extent: usize = parse_field(part, line, "extent")?;
        if extent == 0 {
            return Err(syntax(line, "dimensions must be non-zero".into()));
        }
        if extent > noc_graph::parse::MAX_GRID_EXTENT {
            return Err(syntax(
                line,
                format!(
                    "extent {extent} exceeds the maximum {}",
                    noc_graph::parse::MAX_GRID_EXTENT
                ),
            ));
        }
        dims.push(extent);
    }
    Ok(dims)
}

fn parse_app(name: &str) -> Option<App> {
    Some(match name {
        "mpeg4" => App::Mpeg4,
        "vopd" => App::Vopd,
        "pip" => App::Pip,
        "mwa" => App::Mwa,
        "mwag" => App::Mwag,
        "dsd" => App::Dsd,
        _ => return None,
    })
}

/// Spec keyword of a bundled app (inverse of [`parse_app`]).
fn app_keyword(app: App) -> &'static str {
    match app {
        App::Mpeg4 => "mpeg4",
        App::Vopd => "vopd",
        App::Pip => "pip",
        App::Mwa => "mwa",
        App::Mwag => "mwag",
        App::Dsd => "dsd",
    }
}

/// Parses one mapper spelling, validating its options with the mapper's
/// own `check()` predicate — the single source of the constraints, so
/// `.dse` parsing can never accept a configuration the mapper would
/// reject (or, worse than that, silently clamp) at run time.
fn parse_mapper(name: &str) -> Result<MapperSpec, String> {
    let spec = match name {
        "nmap" => MapperSpec::Nmap(SinglePathOptions::default()),
        "nmap-paper" => MapperSpec::Nmap(SinglePathOptions::paper_exact()),
        "nmap-init" => MapperSpec::NmapInit,
        "nmap-split-quadrant" => MapperSpec::NmapSplit { scope: PathScope::Quadrant, passes: 1 },
        "nmap-split-all" => MapperSpec::NmapSplit { scope: PathScope::AllPaths, passes: 1 },
        "pmap" => MapperSpec::Pmap,
        "gmap" => MapperSpec::Gmap,
        "pbb" => MapperSpec::Pbb(PbbOptions::default()),
        "sa" => MapperSpec::Sa(SaOptions::default()),
        "tabu" => MapperSpec::Tabu(TabuOptions::default()),
        _ => parse_parameterized_mapper(name).ok_or_else(|| format!("unknown mapper `{name}`"))?,
    };
    check_mapper(&spec).map_err(|message| format!("mapper `{name}`: {message}"))?;
    Ok(spec)
}

/// Option constraints of a parsed mapper, delegated to the option types'
/// `check()` methods.
fn check_mapper(spec: &MapperSpec) -> Result<(), String> {
    match spec {
        MapperSpec::Nmap(opts) => opts.check(),
        MapperSpec::NmapSplit { scope, passes } => {
            nmap::SplitOptions { scope: *scope, passes: *passes }.check()
        }
        MapperSpec::Pbb(opts) => opts.check(),
        MapperSpec::Sa(opts) => opts.check(),
        MapperSpec::Tabu(opts) => opts.check(),
        MapperSpec::NmapInit | MapperSpec::Pmap | MapperSpec::Gmap => Ok(()),
    }
}

/// The `keyword[..]` spellings [`MapperSpec::name`] emits for
/// configurations beyond the named defaults: `nmap[p2r8]`,
/// `nmap-split-quadrant[p3]`, `nmap-split-all[p2]`, `pbb[q5000e50000]`,
/// `sa[m20000t0.05c0.9995]`, `tabu[i64t8]`.
fn parse_parameterized_mapper(name: &str) -> Option<MapperSpec> {
    let (base, rest) = name.split_once('[')?;
    let params = rest.strip_suffix(']')?;
    match base {
        "nmap" => {
            let (passes, restarts) = params
                .strip_prefix('p')?
                .split_once('r')
                .and_then(|(p, r)| Some((p.parse().ok()?, r.parse().ok()?)))?;
            Some(MapperSpec::Nmap(SinglePathOptions { passes, restarts }))
        }
        "nmap-split-quadrant" | "nmap-split-all" => {
            let passes = params.strip_prefix('p')?.parse().ok()?;
            let scope = if base == "nmap-split-quadrant" {
                PathScope::Quadrant
            } else {
                PathScope::AllPaths
            };
            Some(MapperSpec::NmapSplit { scope, passes })
        }
        "pbb" => {
            let (max_queue, max_expansions) = params
                .strip_prefix('q')?
                .split_once('e')
                .and_then(|(q, e)| Some((q.parse().ok()?, e.parse().ok()?)))?;
            Some(MapperSpec::Pbb(PbbOptions { max_queue, max_expansions }))
        }
        "sa" => {
            let (moves, rest) = params.strip_prefix('m')?.split_once('t')?;
            let (initial_temp, cooling) = rest.split_once('c')?;
            Some(MapperSpec::Sa(SaOptions {
                moves: moves.parse().ok()?,
                initial_temp: initial_temp.parse().ok()?,
                cooling: cooling.parse().ok()?,
            }))
        }
        "tabu" => {
            let (iterations, tenure) = params.strip_prefix('i')?.split_once('t')?;
            Some(MapperSpec::Tabu(TabuOptions {
                iterations: iterations.parse().ok()?,
                tenure: tenure.parse().ok()?,
            }))
        }
        _ => None,
    }
}

fn parse_loop_kind(name: &str) -> Option<LoopKind> {
    Some(match name {
        "event-queue" => LoopKind::EventQueue,
        "hybrid" => LoopKind::Hybrid,
        "active-set" => LoopKind::ActiveSet,
        "full-scan" => LoopKind::FullScan,
        _ => return None,
    })
}

/// Spec keyword of a simulator loop kind (inverse of [`parse_loop_kind`]).
fn loop_kind_keyword(kind: LoopKind) -> &'static str {
    match kind {
        LoopKind::EventQueue => "event-queue",
        LoopKind::Hybrid => "hybrid",
        LoopKind::ActiveSet => "active-set",
        LoopKind::FullScan => "full-scan",
    }
}

fn parse_routing(name: &str) -> Option<RoutingSpec> {
    Some(match name {
        "min-path" => RoutingSpec::MinPath,
        "xy" => RoutingSpec::Xy,
        "mcf-quadrant" => RoutingSpec::McfQuadrant,
        "mcf-all" => RoutingSpec::McfAllPaths,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use noc_units::mbps;

    use super::*;

    const FULL: &str = "\
# exercise every directive
capacity 800
seed 9
app vopd mpeg4
app dsp
random 12 2 3 50 60
topology fit
topology mesh 4x4
topology torus 3x3
topology fit-torus
topology mesh 4x4x2
topology fit3d
mapper nmap nmap-paper nmap-init pmap gmap pbb nmap-split-quadrant nmap-split-all
routing min-path xy mcf-quadrant mcf-all
simulate {
  bandwidths 1100 1400
  warmup 1000     # comments work inside the block too
  measure 5000
  drain 2000
  burst 4 2.5
  seed 3
  loop active-set
}
";

    #[test]
    fn parses_every_directive() {
        let spec = parse_spec(FULL).unwrap();
        assert_eq!(spec.capacity, mbps(800.0));
        assert_eq!(spec.root_seed, 9);
        assert_eq!(spec.apps.len(), 4);
        assert_eq!(
            spec.apps[3],
            AppDirective::Random {
                config: RandomGraphConfig {
                    cores: 12,
                    avg_degree: 3.0,
                    min_bandwidth: mbps(50.0),
                    max_bandwidth: mbps(60.0),
                },
                instances: 2,
            }
        );
        assert_eq!(spec.topologies.len(), 6);
        assert_eq!(spec.topologies[4], TopologySpec::Mesh { dims: vec![4, 4, 2] });
        assert_eq!(spec.topologies[5], TopologySpec::FitMesh3d);
        assert_eq!(spec.mappers.len(), 8);
        assert_eq!(spec.routings.len(), 4);
        assert_eq!(
            spec.simulate,
            Some(SimulateSpec {
                bandwidths_mbps: vec![mbps(1_100.0), mbps(1_400.0)],
                warmup_cycles: 1_000,
                measure_cycles: 5_000,
                drain_cycles: 2_000,
                burst_packets: 4,
                burst_intensity: 2.5,
                seed: 3,
                loop_kind: LoopKind::ActiveSet,
            })
        );
        // 4 app entries + 1 extra random instance = 5 app axis entries;
        // the two simulate bandwidths double the cross product.
        assert_eq!(spec.scenarios().len(), 5 * 6 * 8 * 4 * 2);
    }

    #[test]
    fn canonical_display_round_trips() {
        let spec = parse_spec(FULL).unwrap();
        let reparsed = parse_spec(&spec.to_string()).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn parameterized_mappers_round_trip() {
        // Builder-level configurations must survive Display -> parse.
        let spec = SweepSpec {
            apps: vec![AppDirective::Bundled(App::Pip)],
            mappers: vec![
                MapperSpec::Nmap(SinglePathOptions { passes: 4, restarts: 2 }),
                MapperSpec::NmapSplit { scope: PathScope::Quadrant, passes: 3 },
                MapperSpec::NmapSplit { scope: PathScope::AllPaths, passes: 2 },
                MapperSpec::Pbb(PbbOptions { max_queue: 123, max_expansions: 456 }),
                MapperSpec::Sa(SaOptions { moves: 5_000, initial_temp: 0.125, cooling: 0.999 }),
                MapperSpec::Tabu(TabuOptions { iterations: 96, tenure: 5 }),
            ],
            ..Default::default()
        };
        let reparsed = parse_spec(&spec.to_string()).unwrap();
        assert_eq!(reparsed.mappers, spec.mappers);
        // And the inline forms parse directly.
        assert_eq!(
            parse_spec("app pip\nmapper nmap[p4r2] pbb[q10e20] sa[m100t0.2c0.9] tabu[i10t2]\n")
                .unwrap()
                .mappers,
            vec![
                MapperSpec::Nmap(SinglePathOptions { passes: 4, restarts: 2 }),
                MapperSpec::Pbb(PbbOptions { max_queue: 10, max_expansions: 20 }),
                MapperSpec::Sa(SaOptions { moves: 100, initial_temp: 0.2, cooling: 0.9 }),
                MapperSpec::Tabu(TabuOptions { iterations: 10, tenure: 2 }),
            ]
        );
        // Malformed parameter suffixes are rejected, not defaulted.
        for bad in ["nmap[p4]", "pbb[q10]", "nmap-split-all[x2]", "gmap[p1]", "sa[m10]", "tabu[i5]"]
        {
            assert!(
                parse_spec(&format!("app pip\nmapper {bad}\n")).is_err(),
                "`{bad}` should not parse"
            );
        }
    }

    #[test]
    fn mapper_options_are_validated_at_parse_time() {
        // The check() predicates run during parsing — an out-of-range
        // knob is a syntax error naming the line, never a silent clamp.
        for (bad, needle) in [
            ("nmap[p0r1]", "passes must be at least 1"),
            ("nmap[p1r0]", "restarts must be at least 1"),
            ("nmap-split-quadrant[p0]", "passes must be at least 1"),
            ("nmap-split-all[p0]", "passes must be at least 1"),
            ("pbb[q0e100]", "queue bound must be at least 1"),
            ("pbb[q10e0]", "expansion budget must be at least 1"),
            ("sa[m0t0.1c0.9]", "moves must be at least 1"),
            ("sa[m10t0.1c1.5]", "cooling must be in (0, 1]"),
            ("tabu[i0t3]", "iterations must be at least 1"),
            ("tabu[i5t0]", "tenure must be at least 1"),
        ] {
            match parse_spec(&format!("app pip\nmapper {bad}\n")) {
                Err(SpecError::Syntax { line, message }) => {
                    assert_eq!(line, 2, "`{bad}`");
                    assert!(message.contains(needle), "`{bad}`: {message}");
                }
                other => panic!("`{bad}` should fail validation, got {other:?}"),
            }
        }
    }

    #[test]
    fn simulate_block_round_trips() {
        // With explicit bandwidth points.
        let with_points = parse_spec(FULL).unwrap();
        assert_eq!(parse_spec(&with_points.to_string()).unwrap(), with_points);

        // Defaults only: an empty block canonicalizes to the default spec.
        let empty = parse_spec("app pip\nsimulate {\n}\n").unwrap();
        assert_eq!(empty.simulate, Some(SimulateSpec::default()));
        assert_eq!(parse_spec(&empty.to_string()).unwrap(), empty);
        assert!(empty.scenarios().scenarios()[0].simulate.is_some());
    }

    #[test]
    fn simulate_block_errors_carry_line_numbers() {
        for (bad, line) in [
            ("app pip\nsimulate {\n", 2),               // unclosed block
            ("app pip\nsimulate\n", 2),                 // missing `{`
            ("app pip\nsimulate {\nmeasure 0\n}\n", 3), // empty window
            ("app pip\nsimulate {\nbandwidths -5\n}\n", 3),
            ("app pip\nsimulate {\nbandwidths\n}\n", 3),
            ("app pip\nsimulate {\nburst 0 2\n}\n", 3),
            ("app pip\nsimulate {\nburst 4 0.5\n}\n", 3),
            ("app pip\nsimulate {\nloop warp-drive\n}\n", 3),
            ("app pip\nsimulate {\nloop\n}\n", 3),
            ("app pip\nsimulate {\nfrobnicate 1\n}\n", 3),
            ("app pip\nsimulate {\n} trailing\n", 3),
            ("app pip\nsimulate {\n}\nsimulate {\n}\n", 4), // duplicate
        ] {
            match parse_spec(bad) {
                Err(SpecError::Syntax { line: l, .. }) => {
                    assert_eq!(l, line, "wrong line for {bad:?}")
                }
                other => panic!("{bad:?} should fail with a syntax error, got {other:?}"),
            }
        }
    }

    #[test]
    fn loop_kinds_parse_and_default_to_event_queue() {
        let default = parse_spec("app pip\nsimulate {\n}\n").unwrap();
        assert_eq!(default.simulate.unwrap().loop_kind, LoopKind::EventQueue);
        for (name, kind) in [
            ("event-queue", LoopKind::EventQueue),
            ("hybrid", LoopKind::Hybrid),
            ("active-set", LoopKind::ActiveSet),
            ("full-scan", LoopKind::FullScan),
        ] {
            let spec = parse_spec(&format!("app pip\nsimulate {{\nloop {name}\n}}\n")).unwrap();
            assert_eq!(spec.simulate.as_ref().unwrap().loop_kind, kind, "{name}");
            // Every kind survives the canonical Display -> parse round trip.
            assert_eq!(parse_spec(&spec.to_string()).unwrap(), spec);
        }
    }

    #[test]
    fn top_level_seed_is_not_the_simulate_seed() {
        let spec = parse_spec("seed 5\napp pip\nsimulate {\nseed 9\n}\n").unwrap();
        assert_eq!(spec.root_seed, 5);
        assert_eq!(spec.simulate.as_ref().unwrap().seed, 9);
    }

    #[test]
    fn all_keywords_expand() {
        let spec = parse_spec("app all\nmapper all\nrouting all\n").unwrap();
        assert_eq!(spec.apps.len(), 6);
        // `mapper all` is pinned to the Figure-3 comparison families, not
        // the whole registry: the split mappers would make a casual
        // `all` cross product explode in LP solves, and sa/tabu are
        // opt-in search strategies. Documented in the module docs.
        let names: Vec<_> = spec.mappers.iter().map(|m| m.name()).collect();
        assert_eq!(names, ["nmap", "pmap", "gmap", "pbb"]);
        assert_eq!(spec.routings.len(), 4);
    }

    #[test]
    fn defaults_apply_when_axes_missing() {
        let spec = parse_spec("app pip\n").unwrap();
        let set = spec.scenarios();
        assert_eq!(set.len(), 1);
        assert_eq!(set.scenarios()[0].capacity, mbps(1_000.0));
        assert_eq!(set.scenarios()[0].routing, RoutingSpec::MinPath);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let spec = parse_spec("# header\n\napp pip # trailing\n").unwrap();
        assert_eq!(spec.apps, vec![AppDirective::Bundled(App::Pip)]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_spec("app pip\nfrobnicate\n").unwrap_err();
        assert_eq!(err.to_string(), "line 2: unknown keyword `frobnicate` (expected capacity/seed/app/random/topology/mapper/routing/simulate)");
        assert!(matches!(
            parse_spec("app nosuch\n").unwrap_err(),
            SpecError::Syntax { line: 1, .. }
        ));
        assert!(matches!(
            parse_spec("mapper warp\napp pip\n").unwrap_err(),
            SpecError::Syntax { line: 1, .. }
        ));
        assert!(matches!(
            parse_spec("routing teleport\napp pip\n").unwrap_err(),
            SpecError::Syntax { line: 1, .. }
        ));
        assert!(matches!(
            parse_spec("topology blob\napp pip\n").unwrap_err(),
            SpecError::Syntax { line: 1, .. }
        ));
        assert!(matches!(
            parse_spec("topology mesh 0x4\napp pip\n").unwrap_err(),
            SpecError::Syntax { line: 1, .. }
        ));
        assert!(matches!(
            parse_spec("topology mesh 4x4x0\napp pip\n").unwrap_err(),
            SpecError::Syntax { line: 1, .. }
        ));
        assert!(matches!(
            parse_spec("topology mesh 4\napp pip\n").unwrap_err(),
            SpecError::Syntax { line: 1, .. }
        ));
        // Rank and extent caps (shared with the `.noc` parser).
        assert!(matches!(
            parse_spec("topology mesh 2x2x2x2x2\napp pip\n").unwrap_err(),
            SpecError::Syntax { line: 1, .. }
        ));
        assert!(matches!(
            parse_spec("topology mesh 4x4x1000\napp pip\n").unwrap_err(),
            SpecError::Syntax { line: 1, .. }
        ));
        assert!(matches!(
            parse_spec("capacity -5\napp pip\n").unwrap_err(),
            SpecError::Syntax { line: 1, .. }
        ));
        assert!(matches!(
            parse_spec("random 5\napp pip\n").unwrap_err(),
            SpecError::Syntax { line: 1, .. }
        ));
        assert!(matches!(
            parse_spec("random 5 2 0.0\napp pip\n").unwrap_err(),
            SpecError::Syntax { line: 1, .. }
        ));
        assert_eq!(parse_spec("capacity 500\n").unwrap_err(), SpecError::Empty);
        assert_eq!(parse_spec("").unwrap_err(), SpecError::Empty);
    }

    #[test]
    fn derived_random_seeds_depend_on_root_seed() {
        let a = parse_spec("seed 1\nrandom 10 1\n").unwrap().scenarios();
        let b = parse_spec("seed 2\nrandom 10 1\n").unwrap().scenarios();
        assert_ne!(a.scenarios()[0].seed, b.scenarios()[0].seed);
    }
}
