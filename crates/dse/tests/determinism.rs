//! The engine's central guarantee: sweep output is byte-identical no
//! matter how many worker threads produced it. Scenario seeds derive from
//! the root seed at set-build time — never from worker identity — and
//! records merge in scenario order, so the default-form (timing-free)
//! writers must produce the same bytes for `threads = 1, 2, 8`.

use noc_dse::{
    parse_spec, run_scenarios, run_scenarios_cached, LoopKind, MapperSpec, RoutingSpec,
    ScenarioSet, SimulateSpec, StageCache, SweepReport, TopologySpec,
};
use noc_graph::RandomGraphConfig;
use noc_probe::Probe;

/// A sweep wide enough that 8 workers genuinely interleave: 14 app
/// entries × 2 topologies × 2 mappers × 2 routings = 112 scenarios.
fn wide_set() -> ScenarioSet {
    ScenarioSet::builder()
        .root_seed(2024)
        .capacity(600.0)
        .all_apps()
        .dsp()
        .random(RandomGraphConfig { cores: 10, ..Default::default() }, 4)
        .random(RandomGraphConfig { cores: 14, avg_degree: 2.5, ..Default::default() }, 3)
        .topology(TopologySpec::FitMesh)
        .topology(TopologySpec::FitTorus)
        .mapper(MapperSpec::NmapInit)
        .mapper(MapperSpec::Gmap)
        .routing(RoutingSpec::MinPath)
        .routing(RoutingSpec::Xy)
        .build()
}

#[test]
fn sweep_output_is_byte_identical_across_thread_counts() {
    let set = wide_set();
    assert_eq!(set.len(), 112);

    let baseline = SweepReport::new(run_scenarios(set.scenarios(), 1));
    let jsonl = baseline.write_jsonl(false);
    let csv = baseline.write_csv(false);
    assert_eq!(jsonl.lines().count(), set.len());

    for threads in [2usize, 8] {
        let report = SweepReport::new(run_scenarios(set.scenarios(), threads));
        assert_eq!(report.write_jsonl(false), jsonl, "JSONL diverged at threads={threads}");
        assert_eq!(report.write_csv(false), csv, "CSV diverged at threads={threads}");
    }
}

/// A sim-enabled sweep: every scenario runs the wormhole simulator after
/// map → route, with the link-bandwidth points as the innermost axis.
/// 2 apps × 2 mappers × 2 routings × 3 bandwidths = 24 sim-backed
/// scenarios — enough for 8 workers to interleave the heavier records.
fn sim_set() -> ScenarioSet {
    sim_set_with(LoopKind::default())
}

/// [`sim_set`] with an explicit simulator loop kind (the loop choice is
/// the only difference — same seeds, same windows, same bandwidths).
fn sim_set_with(loop_kind: LoopKind) -> ScenarioSet {
    ScenarioSet::builder()
        .root_seed(99)
        .app(noc_apps::App::Pip)
        .dsp()
        .mapper(MapperSpec::Nmap(Default::default()))
        .mapper(MapperSpec::NmapInit)
        .routing(RoutingSpec::MinPath)
        .routing(RoutingSpec::Xy)
        .simulate(SimulateSpec {
            bandwidths_mbps: vec![
                noc_units::mbps(600.0),
                noc_units::mbps(1_000.0),
                noc_units::mbps(1_400.0),
            ],
            warmup_cycles: 500,
            measure_cycles: 4_000,
            drain_cycles: 2_000,
            loop_kind,
            ..Default::default()
        })
        .build()
}

#[test]
fn sim_enabled_sweep_is_byte_identical_across_thread_counts() {
    let set = sim_set();
    assert_eq!(set.len(), 24);

    let baseline = SweepReport::new(run_scenarios(set.scenarios(), 1));
    let jsonl = baseline.write_jsonl(false);
    let csv = baseline.write_csv(false);
    // Every record carries real simulation numbers in the sim columns.
    for record in &baseline.records {
        let sim = record.sim.as_ref().expect("simulate stage ran");
        assert!(sim.avg_latency_cycles.to_f64() > 0.0, "{}: no packets measured", record.scenario);
    }
    assert!(jsonl.lines().all(|l| !l.contains("\"sim_avg_latency\":null")));

    for threads in [2usize, 8] {
        let report = SweepReport::new(run_scenarios(set.scenarios(), threads));
        assert_eq!(report.write_jsonl(false), jsonl, "JSONL diverged at threads={threads}");
        assert_eq!(report.write_csv(false), csv, "CSV diverged at threads={threads}");
    }

    // Repeated runs (same process, same thread count) are identical too:
    // the sim seed is a pure function of the scenario.
    let again = SweepReport::new(run_scenarios(set.scenarios(), 1));
    assert_eq!(again.write_jsonl(false), jsonl);
}

/// The event-queue loop through the whole engine pipeline: sim-backed
/// sweeps under the default event-queue loop stay byte-identical across
/// thread counts, and every loop kind produces the *same bytes* as the
/// cycle-stepped oracles — the sim crate's bit-identity guarantee
/// surviving map → route → simulate → serialize end to end.
#[test]
fn sim_sweep_is_loop_kind_invariant_at_every_thread_count() {
    let oracle = SweepReport::new(run_scenarios(sim_set_with(LoopKind::FullScan).scenarios(), 1));
    let jsonl = oracle.write_jsonl(false);
    let csv = oracle.write_csv(false);

    for kind in [LoopKind::ActiveSet, LoopKind::EventQueue, LoopKind::Hybrid] {
        let set = sim_set_with(kind);
        for threads in [1usize, 2, 8] {
            let report = SweepReport::new(run_scenarios(set.scenarios(), threads));
            assert_eq!(
                report.write_jsonl(false),
                jsonl,
                "JSONL diverged from the full-scan oracle at {kind:?}, threads={threads}"
            );
            assert_eq!(
                report.write_csv(false),
                csv,
                "CSV diverged from the full-scan oracle at {kind:?}, threads={threads}"
            );
        }
    }
}

/// The acceptance bar for the stochastic search mappers: `sa` and `tabu`
/// scenarios, expressed as a `.dse` spec (round-tripped through Display
/// first), produce byte-identical JSONL/CSV at 1, 2 and 8 worker
/// threads — SA's random stream derives from the scenario seed, never
/// from worker identity.
#[test]
fn sa_and_tabu_sweeps_are_byte_identical_across_thread_counts() {
    let text = "\
seed 41
capacity 900
app pip
app dsp
random 10 2
topology fit
topology fit-torus
mapper sa tabu sa[m2000t0.1c0.999] tabu[i16t4]
routing min-path
";
    let spec = parse_spec(text).unwrap();
    // Round-trip through the canonical Display form before running: the
    // sweep that runs *is* the reparsed one.
    let spec = parse_spec(&spec.to_string()).unwrap();
    let set = spec.scenarios();
    assert_eq!(set.len(), 4 * 2 * 4);

    let baseline = SweepReport::new(run_scenarios(set.scenarios(), 1));
    let jsonl = baseline.write_jsonl(false);
    let csv = baseline.write_csv(false);
    for record in &baseline.records {
        assert!(record.is_ok(), "{}: {}", record.scenario, record.error);
        assert!(record.comm_cost > noc_units::HopMbps::ZERO);
    }
    // All four mapper spellings appear in the records.
    for name in ["sa", "tabu", "sa[m2000t0.1c0.999]", "tabu[i16t4]"] {
        assert!(baseline.records.iter().any(|r| r.mapper == name), "missing mapper {name}");
    }

    for threads in [2usize, 8] {
        let report = SweepReport::new(run_scenarios(set.scenarios(), threads));
        assert_eq!(report.write_jsonl(false), jsonl, "JSONL diverged at threads={threads}");
        assert_eq!(report.write_csv(false), csv, "CSV diverged at threads={threads}");
    }
}

/// The stage-cache acceptance bar: a routing × bandwidth sweep whose
/// mappers are capacity-invariant shares map stages through the
/// [`StageCache`] — at least 2× fewer map-stage executions than lookups —
/// while the default-form writers stay byte-identical to the uncached
/// engine at every thread count, cold or warm.
#[test]
fn stage_cache_shares_map_stages_without_changing_bytes() {
    // NmapInit and Gmap never read link capacity, so one mapping serves
    // every routing × bandwidth combination of its (app, topology) cell:
    // 4 map executions cover 24 scenarios.
    let set = ScenarioSet::builder()
        .root_seed(99)
        .app(noc_apps::App::Pip)
        .dsp()
        .mapper(MapperSpec::NmapInit)
        .mapper(MapperSpec::Gmap)
        .routing(RoutingSpec::MinPath)
        .routing(RoutingSpec::Xy)
        .simulate(SimulateSpec {
            bandwidths_mbps: vec![
                noc_units::mbps(600.0),
                noc_units::mbps(1_000.0),
                noc_units::mbps(1_400.0),
            ],
            warmup_cycles: 500,
            measure_cycles: 2_000,
            drain_cycles: 1_000,
            ..Default::default()
        })
        .build();
    assert_eq!(set.len(), 24);

    let plain = SweepReport::new(run_scenarios(set.scenarios(), 1));
    let jsonl = plain.write_jsonl(false);
    let csv = plain.write_csv(false);

    for threads in [1usize, 2, 8] {
        // Cold cache: identical bytes, map stage runs once per distinct
        // (app, topology, mapper) cell regardless of worker count.
        let cache = StageCache::in_memory();
        let report = SweepReport::new(run_scenarios_cached(
            set.scenarios(),
            threads,
            &Probe::disabled(),
            &cache,
        ));
        assert_eq!(report.write_jsonl(false), jsonl, "cold JSONL diverged at threads={threads}");
        assert_eq!(report.write_csv(false), csv, "cold CSV diverged at threads={threads}");
        let cold = cache.stats();
        assert_eq!(cold.map_lookups(), 24, "threads={threads}");
        assert_eq!(cold.map_misses, 4, "map must run once per cell (threads={threads})");
        assert!(cold.map_lookups() >= 2 * cold.map_misses, "below the 2x sharing bar");

        // Warm re-run against the same cache: same bytes, zero new map
        // or route executions.
        let warm = SweepReport::new(run_scenarios_cached(
            set.scenarios(),
            threads,
            &Probe::disabled(),
            &cache,
        ));
        assert_eq!(warm.write_jsonl(false), jsonl, "warm JSONL diverged at threads={threads}");
        assert_eq!(warm.write_csv(false), csv, "warm CSV diverged at threads={threads}");
        let stats = cache.stats();
        assert_eq!(stats.map_misses, cold.map_misses, "warm run recomputed a map stage");
        assert_eq!(stats.route_misses, cold.route_misses, "warm run recomputed a route stage");
        assert_eq!(stats.map_hits, cold.map_hits + 24);
        assert_eq!(stats.route_hits, cold.route_hits + 24);
    }
}

#[test]
fn spec_driven_sweeps_are_reproducible_end_to_end() {
    // Same spec text, parsed twice, run with different thread counts:
    // derived seeds and records must line up exactly.
    let text = "\
seed 77
capacity 700
random 9 3
app pip
mapper nmap-init gmap
routing min-path xy
";
    let a = parse_spec(text).unwrap().scenarios();
    let b = parse_spec(text).unwrap().scenarios();
    assert_eq!(a, b);

    let r1 = SweepReport::new(run_scenarios(a.scenarios(), 1));
    let r8 = SweepReport::new(run_scenarios(b.scenarios(), 8));
    assert_eq!(r1.write_jsonl(false), r8.write_jsonl(false));

    // The feasibility/cost aggregates agree too (they ignore timing).
    let s1 = r1.summary();
    let s8 = r8.summary();
    assert_eq!(s1.scenarios, s8.scenarios);
    assert_eq!(s1.feasible, s8.feasible);
    assert_eq!(s1.cost_median, s8.cost_median);
}
