//! Kill-and-resume determinism for sharded sweeps: a sweep interrupted
//! after N shards and resumed from its checkpoint must produce JSONL and
//! CSV **byte-identical** to the uninterrupted sweep — at every thread
//! count, with and without the on-disk cache tier — and the resumed run
//! must actually skip the completed shards rather than redo them.

use noc_dse::{
    run_scenarios, run_sweep_sharded, run_sweep_sharded_with, MapperSpec, RoutingSpec, ScenarioSet,
    SimulateSpec, SweepConfig, SweepReport, TopologySpec,
};
use noc_probe::Probe;

/// Hand-rolled scratch dir (no tempfile dependency): unique per test via
/// process id + a name, removed on drop.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("noc-dse-resume-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }

    fn path(&self) -> std::path::PathBuf {
        self.0.clone()
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A sim-backed sweep wide enough to shard meaningfully: 2 apps × 2
/// topologies × 2 mappers × 2 routings × 2 bandwidths = 32 scenarios,
/// with map stages shared across the routing × bandwidth axes.
fn sweep_set() -> ScenarioSet {
    ScenarioSet::builder()
        .root_seed(515)
        .app(noc_apps::App::Pip)
        .app(noc_apps::App::Mwa)
        .topology(TopologySpec::FitMesh)
        .topology(TopologySpec::FitTorus)
        .mapper(MapperSpec::NmapInit)
        .mapper(MapperSpec::Gmap)
        .routing(RoutingSpec::MinPath)
        .routing(RoutingSpec::Xy)
        .simulate(SimulateSpec {
            bandwidths_mbps: vec![noc_units::mbps(700.0), noc_units::mbps(1_200.0)],
            warmup_cycles: 300,
            measure_cycles: 1_500,
            drain_cycles: 800,
            ..Default::default()
        })
        .build()
}

#[test]
fn interrupted_sweep_resumes_byte_identically() {
    let set = sweep_set();
    assert_eq!(set.len(), 32);
    // The ground truth: the plain in-process engine, single-threaded.
    let oracle = SweepReport::new(run_scenarios(set.scenarios(), 1));
    let jsonl = oracle.write_jsonl(false);
    let csv = oracle.write_csv(false);

    for threads in [1usize, 2, 4] {
        let scratch = ScratchDir::new(&format!("kill-{threads}"));
        let config = SweepConfig {
            threads,
            shard_size: 5, // 7 shards: 6 full + 1 ragged tail
            checkpoint_dir: Some(scratch.path()),
            cache_dir: None,
            shard_budget: Some(3),
            ..Default::default()
        };

        // "Kill" the sweep after 3 of 7 shards.
        let partial = run_sweep_sharded(&set, &config, &Probe::disabled()).unwrap();
        assert!(!partial.completed, "budget must stop the sweep early");
        assert_eq!(partial.shards_total, 7);
        assert_eq!(partial.shards_run, 3);
        assert_eq!(partial.report.records.len(), 15);

        // Resume: completed shards come back from the checkpoint, the
        // rest run, and the merged output matches the oracle exactly.
        let resumed = run_sweep_sharded(
            &set,
            &SweepConfig { shard_budget: None, ..config },
            &Probe::disabled(),
        )
        .unwrap();
        assert!(resumed.completed);
        assert_eq!(resumed.shards_restored, 3, "resume must skip finished shards");
        assert_eq!(resumed.shards_run, 4);
        assert_eq!(
            resumed.report.write_jsonl(false),
            jsonl,
            "resumed JSONL diverged at threads={threads}"
        );
        assert_eq!(
            resumed.report.write_csv(false),
            csv,
            "resumed CSV diverged at threads={threads}"
        );
    }
}

#[test]
fn straight_through_sharded_sweep_matches_plain_engine() {
    let set = sweep_set();
    let oracle = SweepReport::new(run_scenarios(set.scenarios(), 2));
    let scratch = ScratchDir::new("straight");
    let config = SweepConfig {
        threads: 2,
        shard_size: 6,
        checkpoint_dir: Some(scratch.path()),
        cache_dir: Some(scratch.path().join("cache")),
        shard_budget: None,
        ..Default::default()
    };
    let outcome = run_sweep_sharded(&set, &config, &Probe::disabled()).unwrap();
    assert!(outcome.completed);
    assert_eq!(outcome.shards_run, outcome.shards_total);
    assert_eq!(outcome.report.write_jsonl(false), oracle.write_jsonl(false));
    assert_eq!(outcome.report.write_csv(false), oracle.write_csv(false));
    // The capacity-invariant mappers shared map stages across the
    // routing × bandwidth axes: 8 executions serve 32 scenarios.
    assert_eq!(outcome.cache.map_misses, 8);
    assert!(outcome.cache.map_lookups() >= 2 * outcome.cache.map_misses);

    // A second full run against the same checkpoint restores everything
    // and executes nothing.
    let rerun = run_sweep_sharded(&set, &config, &Probe::disabled()).unwrap();
    assert!(rerun.completed);
    assert_eq!(rerun.shards_run, 0);
    assert_eq!(rerun.shards_restored, rerun.shards_total);
    assert_eq!(rerun.report.write_jsonl(false), oracle.write_jsonl(false));
}

#[test]
fn warm_disk_cache_reruns_are_byte_identical_and_skip_map_work() {
    let set = sweep_set();
    let oracle = SweepReport::new(run_scenarios(set.scenarios(), 1)).write_jsonl(false);
    let scratch = ScratchDir::new("warm-disk");
    let base = SweepConfig {
        threads: 2,
        shard_size: 8,
        checkpoint_dir: None, // no checkpoint: the cache alone must carry the reuse
        cache_dir: Some(scratch.path()),
        shard_budget: None,
        ..Default::default()
    };
    let cold = run_sweep_sharded(&set, &base, &Probe::disabled()).unwrap();
    assert_eq!(cold.report.write_jsonl(false), oracle);
    assert_eq!(cold.cache.map_misses, 8);
    assert_eq!(cold.cache.map_disk_hits, 0);

    // Fresh engine call, same cache dir: every distinct map stage comes
    // off disk, none recompute, bytes unchanged.
    let warm = run_sweep_sharded(&set, &base, &Probe::disabled()).unwrap();
    assert_eq!(warm.report.write_jsonl(false), oracle, "warm-cache JSONL diverged");
    assert_eq!(warm.cache.map_misses, 0, "warm run recomputed a map stage");
    assert_eq!(warm.cache.map_disk_hits, 8);
}

#[test]
fn streaming_sink_sees_every_shard_in_order() {
    let set = sweep_set();
    let oracle = SweepReport::new(run_scenarios(set.scenarios(), 1)).write_jsonl(false);
    let scratch = ScratchDir::new("stream");
    let config = SweepConfig {
        threads: 2,
        shard_size: 5,
        checkpoint_dir: Some(scratch.path()),
        cache_dir: None,
        shard_budget: Some(4),
        ..Default::default()
    };
    // Interrupt at 4 shards, then resume while streaming: the sink must
    // see all 7 shards (4 restored + 3 executed) in order, and the
    // concatenation of its records is the whole sweep.
    run_sweep_sharded(&set, &config, &Probe::disabled()).unwrap();
    let mut shards = Vec::new();
    let mut streamed = String::new();
    let outcome = run_sweep_sharded_with(
        &set,
        &SweepConfig { shard_budget: None, ..config },
        &Probe::disabled(),
        &mut |shard, records| {
            shards.push(shard);
            for r in records {
                streamed.push_str(&r.to_json(false));
                streamed.push('\n');
            }
        },
    )
    .unwrap();
    assert_eq!(shards, vec![0, 1, 2, 3, 4, 5, 6]);
    assert_eq!(outcome.shards_restored, 4);
    assert_eq!(streamed, oracle, "streamed JSONL diverged from the oracle");
}
