//! Probe-side acceptance for the stage cache (PR 9): the
//! `dse.cache.{hit,miss,disk_hit}` counters must agree with the cache's
//! own [`CacheStats`], prove the ≥2× map-stage sharing bar on a
//! routing × bandwidth sweep, and stay deterministic across thread
//! counts (misses = distinct computed keys, never racing workers). Needs
//! the `probe` cargo feature: without it the counters compile to no-ops.

#![cfg(feature = "probe")]

use noc_dse::{
    run_scenarios_cached, run_sweep_sharded, MapperSpec, RoutingSpec, ScenarioSet, SimulateSpec,
    StageCache, SweepConfig, SweepReport,
};
use noc_probe::{Probe, Profile};

fn counter(profile: &Profile, name: &str) -> u64 {
    profile.counter(name).unwrap_or(0)
}

/// Routing × bandwidth sweep over capacity-invariant mappers: 2 apps ×
/// 2 mappers × 2 routings × 3 bandwidths = 24 scenarios sharing 4 map
/// stages.
fn shared_map_set() -> ScenarioSet {
    ScenarioSet::builder()
        .root_seed(99)
        .app(noc_apps::App::Pip)
        .dsp()
        .mapper(MapperSpec::NmapInit)
        .mapper(MapperSpec::Gmap)
        .routing(RoutingSpec::MinPath)
        .routing(RoutingSpec::Xy)
        .simulate(SimulateSpec {
            bandwidths_mbps: vec![
                noc_units::mbps(600.0),
                noc_units::mbps(1_000.0),
                noc_units::mbps(1_400.0),
            ],
            warmup_cycles: 300,
            measure_cycles: 1_500,
            drain_cycles: 800,
            ..Default::default()
        })
        .build()
}

#[test]
fn cache_counters_prove_map_stage_sharing_at_every_thread_count() {
    let set = shared_map_set();
    let mut baseline: Option<SweepReport> = None;
    for threads in [1usize, 2, 8] {
        let probe = Probe::new();
        let cache = StageCache::in_memory();
        let report =
            SweepReport::new(run_scenarios_cached(set.scenarios(), threads, &probe, &cache));
        let profile = probe.snapshot();

        // Probe counters and the cache's own stats must tell one story.
        let stats = cache.stats();
        let hits = counter(&profile, "dse.cache.hit");
        let misses = counter(&profile, "dse.cache.miss");
        assert_eq!(hits, stats.map_hits + stats.route_hits, "threads={threads}");
        assert_eq!(misses, stats.map_misses + stats.route_misses, "threads={threads}");
        assert_eq!(counter(&profile, "dse.cache.disk_hit"), 0, "no disk tier attached");

        // The acceptance bar: ≥2× fewer map-stage executions than
        // scenarios, deterministically — 4 cells serve 24 scenarios no
        // matter how many workers interleave.
        let map_misses = counter(&profile, "dse.cache.map_miss");
        let map_hits = counter(&profile, "dse.cache.map_hit");
        assert_eq!(map_misses, 4, "threads={threads}");
        assert_eq!(map_hits, 20, "threads={threads}");
        assert!(map_hits + map_misses >= 2 * map_misses, "below the 2x sharing bar");
        // Route stages are capacity-specific here, so every scenario
        // computes its own.
        assert_eq!(counter(&profile, "dse.cache.route_miss"), 24, "threads={threads}");

        // And the probe never perturbs the records.
        let jsonl = report.write_jsonl(false);
        match &baseline {
            None => baseline = Some(report),
            Some(b) => assert_eq!(jsonl, b.write_jsonl(false), "threads={threads}"),
        }
    }
}

#[test]
fn sharded_sweep_reports_shard_counters() {
    let set = shared_map_set();
    let probe = Probe::new();
    let config = SweepConfig { threads: 2, shard_size: 10, ..Default::default() };
    let outcome = run_sweep_sharded(&set, &config, &probe).unwrap();
    assert!(outcome.completed);
    let profile = probe.snapshot();
    assert_eq!(counter(&profile, "dse.shard.run"), 3, "24 scenarios / shard size 10");
    assert_eq!(counter(&profile, "dse.shard.restored"), 0);
    assert_eq!(counter(&profile, "dse.cache.map_miss"), 4);
}
