//! Warm-started MCF routing acceptance (PR 10): records of a warm-LP
//! sweep must be byte-identical to the cold engine at every thread count,
//! the decomposed routing tables must match cold solves on all six
//! bundled apps, and a finite cache byte budget must never change a
//! record — only recompute evicted stages.

use nmap::mcf::{solve_mcf_for, solve_mcf_warm};
use nmap::{McfKind, McfWarmState, PathScope};
use noc_apps::App;
use noc_dse::{
    run_scenarios, run_scenarios_warm, run_sweep_sharded, AppSpec, MapperSpec, RoutingSpec,
    RunRecord, Scenario, ScenarioSet, StageCache, StageTimes, SweepConfig, TopologySpec,
    WarmLpStore,
};
use noc_probe::Probe;
use noc_units::mbps;

fn strip_times(records: &[RunRecord]) -> Vec<RunRecord> {
    records
        .iter()
        .cloned()
        .map(|mut r| {
            r.times = StageTimes::default();
            r
        })
        .collect()
}

/// An MCF-routed capacity sweep: 8 points per routing regime, all sharing
/// one placement (NmapInit is capacity-invariant), so each regime forms
/// one warm lineage. Points span comfortably-feasible down to infeasible.
fn mcf_capacity_sweep() -> Vec<Scenario> {
    let caps = [1_600.0, 1_400.0, 1_200.0, 1_000.0, 800.0, 600.0, 400.0, 250.0];
    let mut scenarios = Vec::new();
    for routing in [RoutingSpec::McfQuadrant, RoutingSpec::McfAllPaths] {
        for &cap in &caps {
            scenarios.push(Scenario {
                label: format!("DSP@{cap}"),
                app: AppSpec::DspFilter,
                seed: 0,
                topology: TopologySpec::Mesh { dims: vec![3, 2] },
                capacity: mbps(cap),
                mapper: MapperSpec::NmapInit,
                routing,
                simulate: None,
            });
        }
    }
    scenarios
}

#[test]
fn warm_lp_records_match_cold_at_every_thread_count() {
    let scenarios = mcf_capacity_sweep();
    let cold = run_scenarios(&scenarios, 1);
    assert!(cold.iter().all(|r| r.is_ok()), "sweep must route cleanly");
    assert!(cold.iter().any(|r| !r.feasible), "sweep must reach binding capacities");
    for threads in [1usize, 2, 8] {
        let store = WarmLpStore::default();
        let warm = run_scenarios_warm(
            &scenarios,
            threads,
            &Probe::default(),
            &StageCache::in_memory(),
            Some(&store),
        );
        assert_eq!(strip_times(&warm), strip_times(&cold), "threads={threads}");
    }
}

#[test]
fn warm_chain_reproduces_cold_tables_on_all_six_apps() {
    // Flow decomposition is the part of the route stage the simulator
    // consumes, so the decomposed tables — not just objectives — must be
    // identical warm vs cold, on every bundled app, at every point of a
    // descending capacity sweep.
    for app in App::all() {
        let mut chain: Option<McfWarmState> = None;
        for cap in [1_600.0, 1_100.0, 800.0, 550.0, 350.0] {
            let scenario = Scenario {
                label: app.name().to_string(),
                app: AppSpec::Bundled(app),
                seed: 0,
                topology: TopologySpec::FitMesh,
                capacity: mbps(cap),
                mapper: MapperSpec::NmapInit,
                routing: RoutingSpec::McfQuadrant,
                simulate: None,
            };
            let problem = scenario.problem().expect("bundled apps fit their fitted mesh");
            let mapping = nmap::initialize(&problem);
            let commodities = problem.commodities(&mapping);
            let cold = solve_mcf_for(
                problem.topology(),
                &commodities,
                McfKind::FlowMin,
                PathScope::Quadrant,
            );
            let warm = solve_mcf_warm(
                problem.topology(),
                &commodities,
                McfKind::FlowMin,
                PathScope::Quadrant,
                chain.take(),
            );
            match (cold, warm) {
                (Ok(c), Ok((w, next, _))) => {
                    assert_eq!(c.tables, w.tables, "{app} at {cap} MB/s: tables diverged");
                    assert_eq!(c, w, "{app} at {cap} MB/s: solutions diverged");
                    chain = Some(next);
                }
                (Err(c), Err(w)) => {
                    assert_eq!(c.to_string(), w.to_string(), "{app} at {cap} MB/s");
                }
                (c, w) => panic!(
                    "{app} at {cap} MB/s: cold {:?} vs warm {:?} disagree on feasibility",
                    c.map(|s| s.kind),
                    w.map(|(s, ..)| s.kind)
                ),
            }
        }
    }
}

#[cfg(feature = "probe")]
#[test]
fn warm_lp_counters_report_pivot_work() {
    let scenarios = mcf_capacity_sweep();
    let probe = Probe::new();
    let store = WarmLpStore::default();
    let _ = run_scenarios_warm(&scenarios, 1, &probe, &StageCache::in_memory(), Some(&store));
    let profile = probe.snapshot();
    let pivots = profile.counter("lp.pivots").unwrap_or(0);
    let phase1 = profile.counter("lp.phase1_pivots").unwrap_or(0);
    let hits = profile.counter("lp.warm_start.hits").unwrap_or(0);
    let saved = profile.counter("lp.warm_start.pivots_saved").unwrap_or(0);
    assert!(pivots > 0, "MCF solves must record simplex pivots");
    assert!(phase1 > 0, "the chains' cold solves run phase 1");
    assert!(pivots >= phase1);
    println!("lp.pivots={pivots} lp.phase1_pivots={phase1} hits={hits} saved={saved}");
    if hits == 0 {
        assert_eq!(saved, 0, "no hits means nothing saved");
    }
}

#[test]
fn cache_byte_budget_never_changes_records() {
    let set = ScenarioSet::builder()
        .root_seed(11)
        .app(App::Pip)
        .dsp()
        .mapper(MapperSpec::NmapInit)
        .mapper(MapperSpec::Gmap)
        .routing(RoutingSpec::MinPath)
        .routing(RoutingSpec::McfQuadrant)
        .build();
    let baseline = run_sweep_sharded(&set, &SweepConfig::default(), &Probe::default())
        .expect("unbounded sweep");
    let reference = baseline.report.write_jsonl(false);
    assert_eq!(baseline.cache.evictions, 0, "unbounded cache must not evict");
    for (cap, threads) in [(Some(0), 1), (Some(0), 2), (Some(600), 1), (Some(600), 8)] {
        let config = SweepConfig { threads, cache_mem_cap: cap, ..Default::default() };
        let outcome = run_sweep_sharded(&set, &config, &Probe::default()).expect("capped sweep");
        assert_eq!(outcome.report.write_jsonl(false), reference, "cap={cap:?} threads={threads}");
        if cap == Some(0) {
            assert!(outcome.cache.evictions > 0, "cap 0 must evict every entry");
        }
    }
}

#[test]
fn warm_and_capped_sweep_matches_cold_unbounded_sharded_output() {
    // The full SweepConfig surface at once: warm LP + byte budget +
    // sharding must still reproduce the plain engine byte-for-byte.
    let scenarios = mcf_capacity_sweep();
    let set = ScenarioSet::from_scenarios(scenarios.clone());
    let cold = run_scenarios(&scenarios, 1);
    for threads in [1usize, 2, 8] {
        let config = SweepConfig {
            threads,
            shard_size: 5,
            warm_lp: true,
            cache_mem_cap: Some(4_096),
            ..Default::default()
        };
        let outcome = run_sweep_sharded(&set, &config, &Probe::default()).expect("sweep");
        assert_eq!(strip_times(&outcome.report.records), strip_times(&cold), "threads={threads}");
    }
}
