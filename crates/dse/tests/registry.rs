//! Registry completeness: every mapper registered in the workspace-wide
//! registry must (1) parse from its canonical name back to an equal
//! `MapperSpec` through the `.dse` spec format, (2) display back to the
//! same name, and (3) run through the engine — so no algorithm can fall
//! out of sync with the spec format or the engine dispatch again.

use noc_baselines::standard_registry;
use noc_dse::{parse_spec, run_scenario, AppSpec, MapperSpec, RoutingSpec, Scenario, TopologySpec};

/// `mapper <name>` must parse for every registered name, and the parsed
/// spec's Display name must be the registered name — the full
/// name → spec → name round trip.
#[test]
fn every_registered_name_round_trips_through_the_spec_format() {
    let registry = standard_registry();
    assert!(registry.len() >= 10, "expected the full mapper family, got {registry:?}");
    for name in registry.names() {
        let text = format!("app pip\nmapper {name}\n");
        let spec = parse_spec(&text)
            .unwrap_or_else(|e| panic!("registered mapper `{name}` does not parse: {e}"));
        assert_eq!(spec.mappers.len(), 1, "`{name}`");
        assert_eq!(spec.mappers[0].name(), name, "Display diverged from the registry name");
        // The registry's own instance agrees on the spelling.
        let built = registry.build(name, 0).expect("name came from the registry");
        assert_eq!(built.name(), name);
    }
}

/// The engine accepts every registry entry: each parsed mapper runs a
/// real scenario end to end and produces an ok record with a complete
/// placement.
#[test]
fn the_engine_runs_every_registered_mapper() {
    let registry = standard_registry();
    for name in registry.names() {
        let text = format!("app dsp\nmapper {name}\n");
        let spec = parse_spec(&text).expect("registered names parse");
        let scenario = Scenario {
            label: "DSP".into(),
            app: AppSpec::DspFilter,
            seed: 11,
            topology: TopologySpec::FitMesh,
            capacity: noc_units::mbps(2_000.0),
            mapper: spec.mappers[0].clone(),
            routing: RoutingSpec::MinPath,
            simulate: None,
        };
        let record = run_scenario(&scenario);
        assert!(record.is_ok(), "mapper `{name}` failed: {}", record.error);
        assert_eq!(record.mapper, name);
        assert!(record.comm_cost > noc_units::HopMbps::ZERO, "mapper `{name}`");
        assert!(record.feasible, "DSP at 2 GB/s must be feasible for `{name}`");
    }
}

/// Parameterized spellings round-trip too (spot checks beyond the
/// registry's named defaults), and `MapperSpec` equality survives the
/// text form.
#[test]
fn parameterized_spellings_round_trip() {
    for name in
        ["nmap[p3r2]", "pbb[q100e2000]", "sa[m500t0.1c0.99]", "tabu[i20t3]", "nmap-split-all[p2]"]
    {
        let text = format!("app pip\nmapper {name}\n");
        let spec = parse_spec(&text).unwrap_or_else(|e| panic!("`{name}`: {e}"));
        assert_eq!(spec.mappers[0].name(), name);
        let reparsed = parse_spec(&spec.to_string()).unwrap();
        assert_eq!(reparsed.mappers, spec.mappers, "`{name}`");
    }
    let _ = MapperSpec::Pmap; // the enum stays public API
}
