//! Zero-cost-when-off instrumentation for the NMAP suite: counters,
//! gauges, histograms, scoped stage timers and a JSONL event sink.
//!
//! # Two switches, one API
//!
//! Telemetry is controlled at two levels:
//!
//! * **Compile time** — the `probe` cargo feature. Without it (the
//!   default) every handle in this crate is a zero-sized type and every
//!   method an inlined empty body: instrumented call sites compile to
//!   nothing, not even a branch. Consumer crates therefore depend on
//!   `noc-probe` unconditionally and forward a `probe` feature of their
//!   own — no `#[cfg]` at call sites.
//! * **Run time** — the [`Probe`] handle. [`Probe::new`] creates a live
//!   collector (when the feature is on); [`Probe::disabled`] (also the
//!   [`Default`]) is inert in every build, so a library can thread a
//!   probe through unconditionally and let the binary decide.
//!
//! # Out-of-band by construction
//!
//! Probes only *observe*: no method returns anything an instrumented
//! algorithm could branch on (reads like [`Counter::get`] exist for tests
//! and reporting, not for control flow). The workspace's differential
//! suite pins the stronger property that all primary outputs are
//! byte-identical with probes on, off, and compiled out.
//!
//! # Usage
//!
//! ```
//! use noc_probe::{Probe, Value};
//!
//! let probe = Probe::new(); // live when built with `--features probe`
//! let evals = probe.counter("search.evaluations");
//! evals.inc();
//! {
//!     let _t = probe.timer("stage.route_us"); // records µs on drop
//! }
//! if probe.is_enabled() {
//!     probe.emit("sa.sample", &[("iter", Value::from(10u64))]);
//! }
//! let jsonl = probe.to_jsonl(); // one JSON object per line
//! # let _ = jsonl;
//! ```
//!
//! Metric names are free-form; the workspace convention is
//! `<subsystem>.<metric>[_<unit>]` (see DESIGN.md §16 for the catalog).

mod profile;

#[cfg(not(feature = "probe"))]
mod off;
#[cfg(feature = "probe")]
mod on;

#[cfg(feature = "probe")]
pub use on::{Counter, Gauge, Histogram, Probe, StageTimer};

#[cfg(not(feature = "probe"))]
pub use off::{Counter, Gauge, Histogram, Probe, StageTimer};

pub use profile::{CounterSnapshot, Event, GaugeSnapshot, HistogramSnapshot, Profile, Value};

#[cfg(test)]
mod api_tests {
    use super::*;

    #[test]
    fn disabled_probe_is_inert_in_every_build() {
        let probe = Probe::disabled();
        assert!(!probe.is_enabled());
        let c = probe.counter("x");
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 0);
        let g = probe.gauge("y");
        g.set(1.5);
        assert_eq!(g.get(), 0.0);
        probe.histogram("z").record(7);
        let _timer_scope = probe.timer("t");
        probe.emit("e", &[("k", Value::from(1u64))]);
        assert!(probe.snapshot().is_empty());
        assert_eq!(probe.to_jsonl(), "");
    }

    #[test]
    fn default_handles_are_disabled() {
        // Instrumented structs hold `Counter::default()` etc. until a
        // probe is attached; those must be no-ops, not panics.
        Counter::default().inc();
        Gauge::default().set(2.0);
        Histogram::default().record(3);
        assert!(!Probe::default().is_enabled());
    }

    #[test]
    fn compiled_reflects_the_feature() {
        assert_eq!(Probe::compiled(), cfg!(feature = "probe"));
        assert_eq!(Probe::new().is_enabled(), cfg!(feature = "probe"));
    }
}
