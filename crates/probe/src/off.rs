//! Feature-off twins: every handle is a zero-sized type and every method
//! an inlined empty body, so instrumented call sites compile to nothing.
//! The API mirrors [`crate::on`] exactly — keep the two in lockstep.

use crate::profile::{Profile, Value};

/// Inert stand-in for the live probe; see the crate docs.
#[derive(Debug, Clone, Default)]
pub struct Probe(());

impl Probe {
    /// Would be a live collector with the `probe` feature; inert here.
    #[inline]
    pub fn new() -> Self {
        Probe(())
    }

    /// An inert probe (identical to [`Probe::new`] in this build).
    #[inline]
    pub fn disabled() -> Self {
        Probe(())
    }

    /// Whether the crate was built with the `probe` feature.
    #[inline]
    pub const fn compiled() -> bool {
        false
    }

    /// Always false: nothing is ever recorded in this build.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// Returns a no-op counter handle.
    #[inline]
    pub fn counter(&self, _name: &str) -> Counter {
        Counter(())
    }

    /// Returns a no-op gauge handle.
    #[inline]
    pub fn gauge(&self, _name: &str) -> Gauge {
        Gauge(())
    }

    /// Returns a no-op histogram handle.
    #[inline]
    pub fn histogram(&self, _name: &str) -> Histogram {
        Histogram(())
    }

    /// Returns a timer that records nothing on drop.
    #[inline]
    pub fn timer(&self, _name: &str) -> StageTimer {
        StageTimer
    }

    /// Discards the event.
    #[inline]
    pub fn emit(&self, _name: &str, _fields: &[(&str, Value)]) {}

    /// Always the empty profile.
    #[inline]
    pub fn snapshot(&self) -> Profile {
        Profile::default()
    }

    /// Always the empty string.
    #[inline]
    pub fn to_jsonl(&self) -> String {
        String::new()
    }
}

/// No-op counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(());

impl Counter {
    /// Does nothing.
    #[inline]
    pub fn inc(&self) {}

    /// Does nothing.
    #[inline]
    pub fn add(&self, _n: u64) {}

    /// Always zero.
    #[inline]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(());

impl Gauge {
    /// Does nothing.
    #[inline]
    pub fn set(&self, _v: f64) {}

    /// Always zero.
    #[inline]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// No-op histogram.
#[derive(Debug, Clone, Default)]
pub struct Histogram(());

impl Histogram {
    /// Does nothing.
    #[inline]
    pub fn record(&self, _v: u64) {}
}

/// Timer that records nothing when dropped.
#[derive(Debug, Default)]
pub struct StageTimer;
