//! The snapshot model: what a [`Probe`](crate::Probe) has collected,
//! detached from the live atomics, plus its JSONL encoding.
//!
//! Always compiled (with or without the `probe` feature) so signatures
//! that mention these types exist in every build; without the feature a
//! snapshot is simply always empty.

use std::fmt::Write as _;

/// One field value of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counters, cycle numbers, iteration indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (costs, temperatures, fractions).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text (labels, mapper names).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One emitted event: a name plus ordered key/value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (workspace convention: `<subsystem>.<event>`).
    pub name: String,
    /// Fields in emission order.
    pub fields: Vec<(String, Value)>,
}

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Snapshot of one gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// Snapshot of one histogram. Quantiles are nearest-rank over the
/// retained samples (exact while the recording stayed under the sample
/// cap; see [`crate::Histogram`]); `sum` saturates at `u64::MAX`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Values recorded.
    pub count: u64,
    /// Saturating sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Median (nearest-rank over retained samples; 0 when empty).
    pub p50: u64,
    /// 95th percentile (nearest-rank over retained samples; 0 when empty).
    pub p95: u64,
}

/// Everything a probe collected, detached from the live handles:
/// metrics sorted by name, events in emission order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Counter snapshots, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauge snapshots, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Events in emission order.
    pub events: Vec<Event>,
}

impl Profile {
    /// True when nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
    }

    /// Value of the named counter, if it was registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Value of the named gauge, if it was registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Snapshot of the named histogram, if it was registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Events with the given name, in emission order.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Event> {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Encodes the profile as JSON lines: one object per metric and per
    /// event, each with a `"type"` discriminator (`counter`, `gauge`,
    /// `histogram`, `event`). Metrics come first (sorted by name), then
    /// events in emission order. Returns the empty string for an empty
    /// profile.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            push_json_string(&mut out, &c.name);
            let _ = write!(out, ",\"value\":{}}}", c.value);
            out.push('\n');
        }
        for g in &self.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            push_json_string(&mut out, &g.name);
            out.push_str(",\"value\":");
            push_json_f64(&mut out, g.value);
            out.push_str("}\n");
        }
        for h in &self.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            push_json_string(&mut out, &h.name);
            let _ = write!(
                out,
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{}}}",
                h.count, h.sum, h.min, h.max, h.p50, h.p95
            );
            out.push('\n');
        }
        for e in &self.events {
            out.push_str("{\"type\":\"event\",\"name\":");
            push_json_string(&mut out, &e.name);
            for (key, value) in &e.fields {
                out.push(',');
                push_json_string(&mut out, key);
                out.push(':');
                push_json_value(&mut out, value);
            }
            out.push_str("}\n");
        }
        out
    }
}

fn push_json_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => push_json_f64(out, *v),
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Value::Str(v) => push_json_string(out, v),
    }
}

/// JSON has no spelling for `inf`/`NaN`; non-finite values become `null`
/// rather than emitting unparsable output (same policy as the dse report
/// writers).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_are_json_objects_with_type_tags() {
        let profile = Profile {
            counters: vec![CounterSnapshot { name: "a.b".into(), value: 7 }],
            gauges: vec![GaugeSnapshot { name: "g".into(), value: 0.25 }],
            histograms: vec![HistogramSnapshot {
                name: "h_us".into(),
                count: 2,
                sum: 30,
                min: 10,
                max: 20,
                p50: 10,
                p95: 20,
            }],
            events: vec![Event {
                name: "e".into(),
                fields: vec![
                    ("iter".into(), Value::U64(3)),
                    ("cost".into(), Value::F64(1.5)),
                    ("label".into(), Value::Str("a \"b\"\n".into())),
                    ("ok".into(), Value::Bool(true)),
                    ("delta".into(), Value::I64(-2)),
                ],
            }],
        };
        let jsonl = profile.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
        }
        assert_eq!(lines[0], "{\"type\":\"counter\",\"name\":\"a.b\",\"value\":7}");
        assert_eq!(lines[1], "{\"type\":\"gauge\",\"name\":\"g\",\"value\":0.25}");
        assert!(lines[2].contains("\"p95\":20"), "histogram line: {}", lines[2]);
        assert!(lines[3].contains("\"label\":\"a \\\"b\\\"\\n\""), "event line: {}", lines[3]);
        assert!(lines[3].contains("\"delta\":-2"));
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        let profile = Profile {
            gauges: vec![GaugeSnapshot { name: "g".into(), value: f64::NAN }],
            events: vec![Event {
                name: "e".into(),
                fields: vec![("v".into(), Value::F64(f64::INFINITY))],
            }],
            ..Default::default()
        };
        let jsonl = profile.to_jsonl();
        assert!(jsonl.contains("\"value\":null"));
        assert!(jsonl.contains("\"v\":null"));
        assert!(!jsonl.contains("inf") && !jsonl.contains("NaN"));
    }

    #[test]
    fn lookups_find_metrics_by_name() {
        let profile = Profile {
            counters: vec![CounterSnapshot { name: "c".into(), value: 3 }],
            gauges: vec![GaugeSnapshot { name: "g".into(), value: 2.0 }],
            ..Default::default()
        };
        assert_eq!(profile.counter("c"), Some(3));
        assert_eq!(profile.counter("missing"), None);
        assert_eq!(profile.gauge("g"), Some(2.0));
        assert!(profile.histogram("h").is_none());
        assert!(!profile.is_empty());
        assert!(Profile::default().is_empty());
        assert_eq!(Profile::default().to_jsonl(), "");
    }

    #[test]
    fn value_from_impls_cover_the_common_types() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(3u64), Value::U64(3));
        assert_eq!(Value::from(3u32), Value::U64(3));
        assert_eq!(Value::from(-3i64), Value::I64(-3));
        assert_eq!(Value::from(0.5), Value::F64(0.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from("x".to_string()), Value::Str("x".into()));
    }
}
