//! Feature-on implementation: shared-nothing handles over atomics, a
//! mutex-guarded histogram/event store, and name-sorted snapshots. The
//! API mirrors [`crate::off`] exactly — keep the two in lockstep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::profile::{CounterSnapshot, Event, GaugeSnapshot, HistogramSnapshot, Profile, Value};

/// Raw histogram samples retained per metric for exact quantiles. Past
/// this the stream keeps updating count/sum/min/max but stops storing
/// samples, so quantiles become "over the first N" — fine for the stage
/// timings this crate serves, which stay far below the cap.
const SAMPLE_CAP: usize = 4096;

/// Hard bound on buffered events; past it events are counted as dropped
/// instead of growing without limit.
const EVENT_CAP: usize = 1 << 20;

#[derive(Debug, Default)]
struct HistState {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    samples: Vec<u64>,
}

impl HistState {
    fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += u128::from(v);
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(v);
        }
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count,
            sum: u64::try_from(self.sum).unwrap_or(u64::MAX),
            min: self.min,
            max: self.max,
            p50: nearest_rank(&sorted, 0.50),
            p95: nearest_rank(&sorted, 0.95),
        }
    }
}

/// Nearest-rank quantile over an ascending slice (0 when empty).
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[derive(Default)]
struct Inner {
    counters: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    gauges: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    histograms: Mutex<Vec<(String, Arc<Mutex<HistState>>)>>,
    events: Mutex<Vec<Event>>,
    events_dropped: AtomicU64,
}

fn intern<T: Default>(registry: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut entries = registry.lock().unwrap();
    if let Some((_, cell)) = entries.iter().find(|(n, _)| n == name) {
        return Arc::clone(cell);
    }
    let cell = Arc::new(T::default());
    entries.push((name.to_string(), Arc::clone(&cell)));
    cell
}

/// Runtime telemetry handle. [`Probe::new`] collects; [`Probe::disabled`]
/// is inert. Cloning shares the underlying store, so handles can be
/// spread across threads and snapshotted once at the end.
#[derive(Clone, Default)]
pub struct Probe {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Probe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Probe").field("enabled", &self.is_enabled()).finish()
    }
}

impl Probe {
    /// A live collector.
    pub fn new() -> Self {
        Probe { inner: Some(Arc::new(Inner::default())) }
    }

    /// An inert probe: every handle it hands out is a no-op.
    #[inline]
    pub fn disabled() -> Self {
        Probe { inner: None }
    }

    /// Whether the crate was built with the `probe` feature.
    #[inline]
    pub const fn compiled() -> bool {
        true
    }

    /// True when this handle actually records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Counter handle for `name`; same name → same underlying cell.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| intern(&inner.counters, name)))
    }

    /// Gauge handle for `name`; same name → same underlying cell.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| intern(&inner.gauges, name)))
    }

    /// Histogram handle for `name`; same name → same underlying store.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| intern(&inner.histograms, name)))
    }

    /// Scoped timer: records elapsed microseconds into the named
    /// histogram when dropped.
    pub fn timer(&self, name: &str) -> StageTimer {
        StageTimer(if self.is_enabled() {
            Some((self.histogram(name), Instant::now()))
        } else {
            None
        })
    }

    /// Appends a structured event. Field construction can be costly, so
    /// hot paths should guard emission with [`Probe::is_enabled`].
    pub fn emit(&self, name: &str, fields: &[(&str, Value)]) {
        let Some(inner) = &self.inner else { return };
        let mut events = inner.events.lock().unwrap();
        if events.len() >= EVENT_CAP {
            inner.events_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(Event {
            name: name.to_string(),
            fields: fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
        });
    }

    /// Detached copy of everything collected so far: metrics sorted by
    /// name, events in emission order. If events were dropped at the
    /// cap, a `probe.events_dropped` counter records how many.
    pub fn snapshot(&self) -> Profile {
        let Some(inner) = &self.inner else { return Profile::default() };
        let mut counters: Vec<CounterSnapshot> = inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, cell)| CounterSnapshot {
                name: name.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        let dropped = inner.events_dropped.load(Ordering::Relaxed);
        if dropped > 0 {
            counters
                .push(CounterSnapshot { name: "probe.events_dropped".to_string(), value: dropped });
        }
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSnapshot> = inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, cell)| GaugeSnapshot {
                name: name.clone(),
                value: f64::from_bits(cell.load(Ordering::Relaxed)),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, state)| state.lock().unwrap().snapshot(name))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let events = inner.events.lock().unwrap().clone();
        Profile { counters, gauges, histograms, events }
    }

    /// Shorthand for `snapshot().to_jsonl()`.
    pub fn to_jsonl(&self) -> String {
        self.snapshot().to_jsonl()
    }
}

/// Monotonic counter handle (relaxed atomics; cheap from any thread).
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Last-write-wins gauge handle (stores the f64 bit pattern atomically).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a disabled handle).
    #[inline]
    pub fn get(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// Histogram handle; see [`HistogramSnapshot`] for what a recording
/// yields.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<Mutex<HistState>>>);

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(state) = &self.0 {
            state.lock().unwrap().record(v);
        }
    }
}

/// Scoped timer from [`Probe::timer`]: on drop, records the elapsed
/// microseconds (saturated to `u64`) into its histogram.
#[derive(Debug, Default)]
pub struct StageTimer(Option<(Histogram, Instant)>);

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.0.take() {
            hist.record(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_cells_by_name() {
        let probe = Probe::new();
        let a = probe.counter("c");
        let b = probe.counter("c");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(probe.snapshot().counter("c"), Some(3));
    }

    #[test]
    fn gauges_and_histograms_record() {
        let probe = Probe::new();
        probe.gauge("g").set(0.75);
        let h = probe.histogram("h");
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let snap = probe.snapshot();
        assert_eq!(snap.gauge("g"), Some(0.75));
        let hist = snap.histogram("h").unwrap();
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum, 100);
        assert_eq!(hist.min, 10);
        assert_eq!(hist.max, 40);
        assert_eq!(hist.p50, 20);
        assert_eq!(hist.p95, 40);
    }

    #[test]
    fn single_sample_quantiles_are_the_sample() {
        let probe = Probe::new();
        probe.histogram("h").record(42);
        let snap = probe.snapshot();
        let hist = snap.histogram("h").unwrap();
        assert_eq!((hist.p50, hist.p95, hist.min, hist.max), (42, 42, 42, 42));
    }

    #[test]
    fn histogram_sum_saturates() {
        let probe = Probe::new();
        let h = probe.histogram("h");
        h.record(u64::MAX);
        h.record(u64::MAX);
        let snap = probe.snapshot();
        assert_eq!(snap.histogram("h").unwrap().sum, u64::MAX);
    }

    #[test]
    fn timer_records_on_drop() {
        let probe = Probe::new();
        drop(probe.timer("t_us"));
        let snap = probe.snapshot();
        assert_eq!(snap.histogram("t_us").unwrap().count, 1);
    }

    #[test]
    fn events_keep_emission_order_and_snapshot_sorts_metrics() {
        let probe = Probe::new();
        probe.counter("z.last").inc();
        probe.counter("a.first").inc();
        probe.emit("step", &[("i", Value::from(0u64))]);
        probe.emit("step", &[("i", Value::from(1u64))]);
        let snap = probe.snapshot();
        assert_eq!(snap.counters[0].name, "a.first");
        assert_eq!(snap.counters[1].name, "z.last");
        let iters: Vec<&Value> = snap.events_named("step").map(|e| &e.fields[0].1).collect();
        assert_eq!(iters, [&Value::U64(0), &Value::U64(1)]);
    }

    #[test]
    fn clones_share_the_store() {
        let probe = Probe::new();
        let clone = probe.clone();
        clone.counter("c").inc();
        assert_eq!(probe.snapshot().counter("c"), Some(1));
    }

    #[test]
    fn cross_thread_counting_is_lossless() {
        let probe = Probe::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = probe.counter("c");
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(probe.snapshot().counter("c"), Some(4000));
    }
}
