//! Shared fixtures for the Criterion benchmarks.
//!
//! The benchmark targets live in `benches/`:
//!
//! * `mapping` — `initialize()`, the greedy router, full single-path NMAP,
//!   PMAP/GMAP/PBB, and NMAP-with-splitting on a small instance.
//! * `lp` — simplex solves of MCF1/MCF2/min-max-load models.
//! * `simulator` — wormhole simulator cycles/second on the DSP design.
//! * `figures` — end-to-end regeneration of each paper artifact on
//!   reduced parameter sets (the shapes benchmarked are the same code
//!   paths the experiment binaries run at full scale).

#![forbid(unsafe_code)]

use nmap::MappingProblem;
use noc_graph::{RandomGraphConfig, Topology};

/// A deterministic mid-size random instance (25 cores on a 5×5 mesh) used
/// by several benchmarks.
pub fn random_instance_25() -> MappingProblem {
    let graph = RandomGraphConfig { cores: 25, ..Default::default() }.generate(1);
    MappingProblem::new(graph, Topology::mesh(5, 5, 1e9)).expect("fits")
}

/// The paper's VOPD instance on its 4×4 mesh with generous capacity.
pub fn vopd_instance() -> MappingProblem {
    MappingProblem::new(noc_apps::vopd(), Topology::mesh(4, 4, 2_000.0)).expect("fits")
}

/// The paper's DSP instance on its 3×2 mesh.
pub fn dsp_instance() -> MappingProblem {
    MappingProblem::new(noc_apps::dsp_filter(), Topology::mesh(3, 2, 2_000.0)).expect("fits")
}
