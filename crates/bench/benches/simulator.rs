//! Wormhole-simulator benchmarks: cycles/second on the DSP design (the
//! cost of the Figure 5(c) sweep), the full-scan vs active-set cycle
//! loops, the event/tick-queue loop against the cycle-stepped oracle,
//! and the sequential vs pooled engine-backed Figure 5(c) sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use noc_experiments::dse_bridge::fig5c_via_engine;
use noc_experiments::fig5c::{design_dsp, flows_from_tables, Fig5cConfig};
use noc_graph::Topology;
use noc_sim::{LoopKind, SimConfig, Simulator};

fn bench_config() -> SimConfig {
    SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 20_000,
        drain_cycles: 4_000,
        ..SimConfig::default()
    }
}

fn bench_simulator(c: &mut Criterion) {
    let design = design_dsp();
    let topology = Topology::mesh(3, 2, 1_400.0);
    let config = bench_config();
    let total_cycles = config.warmup_cycles + config.measure_cycles + config.drain_cycles;

    let mut group = c.benchmark_group("simulator_dsp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_cycles));
    group.bench_function("minpath_25k_cycles", |b| {
        b.iter(|| {
            let flows = flows_from_tables(&design.problem, &design.mapping, &design.minpath_tables);
            let mut sim = Simulator::new(&topology, flows, config.clone());
            black_box(sim.run())
        })
    });
    group.bench_function("split_25k_cycles", |b| {
        b.iter(|| {
            let flows = flows_from_tables(&design.problem, &design.mapping, &design.split_tables);
            let mut sim = Simulator::new(&topology, flows, config.clone());
            black_box(sim.run())
        })
    });
    group.finish();
}

/// The cycle-loop comparison on the Figure 5(c) workload: the original
/// full scan (every router and link visited every cycle) against the
/// active-set loop (idle routers/links skipped, token accrual replayed
/// lazily). Both produce bit-identical reports — asserted by the
/// `noc-sim` unit tests — so any gap here is pure overhead removed.
fn bench_loop_kinds(c: &mut Criterion) {
    let design = design_dsp();
    let topology = Topology::mesh(3, 2, 1_400.0);
    let config = bench_config();
    let total_cycles = config.warmup_cycles + config.measure_cycles + config.drain_cycles;

    let mut group = c.benchmark_group("simulator_loop_kind");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_cycles));
    for (name, kind) in [("full_scan", LoopKind::FullScan), ("active_set", LoopKind::ActiveSet)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let flows =
                    flows_from_tables(&design.problem, &design.mapping, &design.split_tables);
                let mut sim = Simulator::new(&topology, flows, config.clone());
                sim.set_loop_kind(kind);
                black_box(sim.run())
            })
        });
    }
    group.finish();
}

/// The event/tick-queue loop against the cycle-stepped active-set oracle
/// across the Figure 5(c) bandwidth range. The win grows toward the
/// high-bandwidth (low-load) end of the sweep: when links drain fast, the
/// network spends most cycles idle and the tick queue skips them
/// wholesale, where even the active-set loop must still step cycle by
/// cycle. All three loops are bit-identical (the `event_queue_identity`
/// suite), so the gap is pure idle-time removed.
fn bench_event_queue(c: &mut Criterion) {
    let design = design_dsp();
    let config = bench_config();
    let total_cycles = config.warmup_cycles + config.measure_cycles + config.drain_cycles;

    let mut group = c.benchmark_group("simulator_event_queue");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_cycles));
    // 1100 MB/s = near saturation (the sweep's left edge), 1800 MB/s =
    // the low-load right edge where idle-time skipping pays most.
    for bandwidth in [1_100.0, 1_800.0] {
        let topology = Topology::mesh(3, 2, bandwidth);
        for (name, kind) in
            [("active_set", LoopKind::ActiveSet), ("event_queue", LoopKind::EventQueue)]
        {
            let id = BenchmarkId::new(name, format!("{bandwidth}mbps"));
            group.bench_with_input(id, &kind, |b, &kind| {
                b.iter(|| {
                    let flows =
                        flows_from_tables(&design.problem, &design.mapping, &design.split_tables);
                    let mut sim = Simulator::new(&topology, flows, config.clone());
                    sim.set_loop_kind(kind);
                    black_box(sim.run())
                })
            });
        }
    }
    group.finish();
}

/// The engine-backed Figure 5(c) sweep, sequential vs pooled: 8 bandwidth
/// points × 2 table sets = 16 independent simulations fanned out over the
/// deterministic worker pool. Results are identical at every thread count
/// (asserted by the `dse_fig5c` integration test); only wall time moves.
fn bench_fig5c_sweep(c: &mut Criterion) {
    let config = Fig5cConfig {
        sim: SimConfig {
            warmup_cycles: 500,
            measure_cycles: 5_000,
            drain_cycles: 2_000,
            ..SimConfig::default()
        },
        ..Fig5cConfig::default()
    };
    let parallelism = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let mut thread_counts: Vec<usize> =
        [1usize, 2, parallelism].into_iter().filter(|&t| t <= parallelism).collect();
    thread_counts.dedup();

    let mut group = c.benchmark_group("fig5c_sweep");
    group.sample_size(10);
    for threads in thread_counts {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &threads| {
            b.iter(|| black_box(fig5c_via_engine(&config, threads)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_loop_kinds, bench_event_queue, bench_fig5c_sweep);
criterion_main!(benches);
