//! Wormhole-simulator benchmarks: cycles/second on the DSP design (the
//! cost of the Figure 5(c) sweep).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use noc_experiments::fig5c::{design_dsp, flows_from_tables};
use noc_graph::Topology;
use noc_sim::{SimConfig, Simulator};

fn bench_simulator(c: &mut Criterion) {
    let design = design_dsp();
    let topology = Topology::mesh(3, 2, 1_400.0);
    let config = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 20_000,
        drain_cycles: 4_000,
        ..SimConfig::default()
    };
    let total_cycles = config.warmup_cycles + config.measure_cycles + config.drain_cycles;

    let mut group = c.benchmark_group("simulator_dsp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_cycles));
    group.bench_function("minpath_25k_cycles", |b| {
        b.iter(|| {
            let flows = flows_from_tables(&design.problem, &design.mapping, &design.minpath_tables);
            let mut sim = Simulator::new(&topology, flows, config.clone());
            black_box(sim.run())
        })
    });
    group.bench_function("split_25k_cycles", |b| {
        b.iter(|| {
            let flows = flows_from_tables(&design.problem, &design.mapping, &design.split_tables);
            let mut sim = Simulator::new(&topology, flows, config.clone());
            black_box(sim.run())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
