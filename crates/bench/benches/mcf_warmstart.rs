//! Warm-start benchmarks for MCF routing across a bandwidth sweep: the
//! PR-10 tentpole. Each benchmark routes the same commodity set at eight
//! descending capacity points (the shape of a `noc-dse` bandwidth sweep)
//! and compares three solver configurations on identical instances:
//!
//! * `cold_dense`  — every point solved from scratch with the dense
//!   pivot oracle (the seed configuration);
//! * `cold_sparse` — every point solved from scratch with the sparse
//!   segment pivot;
//! * `warm_chain`  — the first point captures a tableau snapshot and
//!   every later point dual-restarts from its predecessor, as
//!   `--warm-lp` does.
//!
//! All three produce bit-identical [`nmap::McfSolution`]s; only the wall
//! time may differ. `BENCH_mcf_warmstart.json` (written by
//! `nmap_dse --bench-mcf`) snapshots the same comparison end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nmap::mcf::{solve_mcf_for, solve_mcf_for_with_options, solve_mcf_warm};
use nmap::{Commodity, McfKind, McfWarmState, PathScope};
use noc_graph::{RandomGraphConfig, Topology};
use noc_lp::{PivotMode, SimplexOptions};

/// Capacity points as multiples of the instance's min-max-load optimum,
/// mirroring `nmap_dse --bench-mcf`: every point feasible, tightening
/// toward the binding regime.
const CAP_FACTORS: [f64; 8] = [4.0, 3.0, 2.5, 2.0, 1.75, 1.5, 1.3, 1.15];

/// A 24-core chain (24x1 mesh): routing optima are unique at every
/// point, so the warm chain hits the whole sweep (see DESIGN.md §19).
fn chain_instance() -> ([usize; 2], Vec<Commodity>, Vec<f64>) {
    let dims = [24usize, 1usize];
    let graph = RandomGraphConfig { cores: 24, ..Default::default() }.generate(7);
    let problem = nmap::MappingProblem::new(graph, Topology::mesh(dims[0], dims[1], 1e9))
        .expect("chain fits its mesh");
    let mapping = nmap::initialize(&problem);
    let commodities = problem.commodities(&mapping);
    let lambda = solve_mcf_for(
        &Topology::mesh(dims[0], dims[1], 1e9),
        &commodities,
        McfKind::MinMaxLoad,
        PathScope::AllPaths,
    )
    .expect("min-max load is always feasible")
    .objective;
    let caps = CAP_FACTORS.iter().map(|f| f * lambda).collect();
    (dims, commodities, caps)
}

fn bench_mcf_warmstart(c: &mut Criterion) {
    let (dims, commodities, caps) = chain_instance();
    let sweep = |cap: f64| Topology::mesh(dims[0], dims[1], cap);
    let dense = SimplexOptions { pivot_mode: PivotMode::Dense, ..SimplexOptions::default() };

    let mut group = c.benchmark_group("mcf_warmstart");
    group.sample_size(10);
    group.bench_function("sweep8_cold_dense", |b| {
        b.iter(|| {
            for &cap in &caps {
                black_box(
                    solve_mcf_for_with_options(
                        &sweep(cap),
                        &commodities,
                        McfKind::FlowMin,
                        PathScope::AllPaths,
                        dense,
                    )
                    .unwrap(),
                );
            }
        })
    });
    group.bench_function("sweep8_cold_sparse", |b| {
        b.iter(|| {
            for &cap in &caps {
                black_box(
                    solve_mcf_for(&sweep(cap), &commodities, McfKind::FlowMin, PathScope::AllPaths)
                        .unwrap(),
                );
            }
        })
    });
    group.bench_function("sweep8_warm_chain", |b| {
        b.iter(|| {
            let mut chain: Option<McfWarmState> = None;
            for &cap in &caps {
                let (solution, next, _) = solve_mcf_warm(
                    &sweep(cap),
                    &commodities,
                    McfKind::FlowMin,
                    PathScope::AllPaths,
                    chain.take(),
                )
                .unwrap();
                black_box(solution);
                chain = Some(next);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mcf_warmstart);
criterion_main!(benches);
