//! End-to-end figure/table regeneration benchmarks on reduced parameter
//! sets — one benchmark per paper artifact, exercising exactly the code
//! the `noc-experiments` binaries run at full scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use noc_apps::App;
use noc_baselines::PbbOptions;
use noc_experiments::fig5c::{self, Fig5cConfig};
use noc_experiments::table2::{self, Table2Config};
use noc_experiments::{fig3, fig4, routing_ablation, table3};
use noc_sim::SimConfig;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig3_pip", |b| b.iter(|| black_box(fig3::run_app(App::Pip))));
    group.bench_function("fig4_pip", |b| b.iter(|| black_box(fig4::run_app(App::Pip))));
    group.bench_function("table2_15cores_1inst", |b| {
        let config = Table2Config {
            sizes: vec![15],
            instances: 1,
            pbb: PbbOptions { max_queue: 500, max_expansions: 5_000 },
        };
        b.iter(|| black_box(table2::run(&config)))
    });
    group.bench_function("table3_dsp", |b| b.iter(|| black_box(table3::run())));
    group.bench_function("fig5c_one_point", |b| {
        let config = Fig5cConfig {
            bandwidths_mbps: vec![1_400.0],
            sim: SimConfig {
                warmup_cycles: 1_000,
                measure_cycles: 10_000,
                drain_cycles: 3_000,
                ..SimConfig::default()
            },
            ..Fig5cConfig::default()
        };
        b.iter(|| black_box(fig5c::run(&config)))
    });
    group.bench_function("routing_ablation_pip", |b| {
        b.iter(|| black_box(routing_ablation::run_app(App::Pip)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
