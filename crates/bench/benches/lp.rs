//! LP-solver benchmarks: the MCF programs NMAP solves per swap (the
//! paper's lp_solve workload).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench::{dsp_instance, vopd_instance};
use nmap::{initialize, mcf::solve_mcf, McfKind, PathScope};
use noc_lp::{LinearProgram, Sense};

fn bench_mcf_models(c: &mut Criterion) {
    let vopd = vopd_instance();
    let vopd_mapping = initialize(&vopd);
    let dsp = dsp_instance();
    let dsp_mapping = initialize(&dsp);

    let mut group = c.benchmark_group("mcf");
    group.sample_size(10);
    group.bench_function("mcf1_slack_vopd_quadrant", |b| {
        b.iter(|| {
            black_box(
                solve_mcf(&vopd, &vopd_mapping, McfKind::SlackMin, PathScope::Quadrant).unwrap(),
            )
        })
    });
    group.bench_function("mcf2_flow_vopd_quadrant", |b| {
        b.iter(|| {
            black_box(
                solve_mcf(&vopd, &vopd_mapping, McfKind::FlowMin, PathScope::Quadrant).unwrap(),
            )
        })
    });
    group.bench_function("minmax_vopd_allpaths", |b| {
        b.iter(|| {
            black_box(
                solve_mcf(&vopd, &vopd_mapping, McfKind::MinMaxLoad, PathScope::AllPaths).unwrap(),
            )
        })
    });
    group.bench_function("mcf2_flow_dsp_allpaths", |b| {
        b.iter(|| {
            black_box(solve_mcf(&dsp, &dsp_mapping, McfKind::FlowMin, PathScope::AllPaths).unwrap())
        })
    });
    group.finish();
}

fn bench_dense_simplex(c: &mut Criterion) {
    // A dense synthetic LP exercising the raw tableau pivots.
    c.bench_function("simplex_dense_30x40", |b| {
        b.iter(|| {
            let mut lp = LinearProgram::new(Sense::Minimize);
            let vars: Vec<_> = (0..40)
                .map(|i| lp.add_variable(format!("x{i}"), ((i * 7) % 11) as f64 - 5.0))
                .collect();
            for r in 0..30usize {
                let terms: Vec<_> = vars
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| (v, (((r * 13 + j * 5) % 17) as f64) / 4.0 - 1.0))
                    .collect();
                lp.add_le(&terms, 25.0 + (r % 7) as f64);
            }
            for &v in &vars {
                lp.add_le(&[(v, 1.0)], 10.0);
            }
            black_box(lp.solve().unwrap())
        })
    });
}

criterion_group!(benches, bench_mcf_models, bench_dense_simplex);
criterion_main!(benches);
