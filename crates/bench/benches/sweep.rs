//! Design-space-sweep benchmarks: the `noc-dse` worker pool (sequential
//! vs pooled throughput on a multi-scenario sweep) and the cached
//! evaluation context that accelerates every scenario's hot path.
//!
//! On a multi-core host the pooled rows should beat `threads_1` roughly
//! linearly in core count (scenarios are independent); on a single-core
//! host they tie, which is itself the determinism story — thread count
//! changes wall time only, never results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::vopd_instance;
use nmap::{
    initialize, map_single_path, map_single_path_with, routing, EvalContext, SinglePathOptions,
};
use noc_dse::{
    run_scenarios, run_scenarios_cached, MapperSpec, RoutingSpec, ScenarioSet, StageCache,
    TopologySpec,
};
use noc_graph::RandomGraphConfig;
use noc_probe::Probe;

/// A sweep wide enough to keep several workers busy: 6 bundled apps +
/// 4 random graphs, two fabrics each, NMAP paper-exact under min-path
/// routing (40 scenarios).
fn sweep_set() -> ScenarioSet {
    ScenarioSet::builder()
        .root_seed(11)
        .all_apps()
        .random(RandomGraphConfig { cores: 16, ..Default::default() }, 4)
        .topology(TopologySpec::FitMesh)
        .topology(TopologySpec::FitTorus)
        .mapper(MapperSpec::Nmap(SinglePathOptions::paper_exact()))
        .routing(RoutingSpec::MinPath)
        .build()
}

fn bench_sweep_runner(c: &mut Criterion) {
    let set = sweep_set();
    let parallelism = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let mut group = c.benchmark_group("sweep_runner");
    group.sample_size(10);
    let mut thread_counts: Vec<usize> =
        [1usize, 2, parallelism].into_iter().filter(|&t| t <= parallelism).collect();
    thread_counts.dedup();
    for threads in thread_counts {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &threads| {
            b.iter(|| black_box(run_scenarios(set.scenarios(), threads)))
        });
    }
    group.finish();
}

fn bench_stage_cache(c: &mut Criterion) {
    // The PR-9 stage cache on a map-dominated sweep: `cold` pays every
    // map stage into a fresh cache each iteration; `warm` re-sweeps
    // against a primed cache, so every stage is a lookup. The gap is the
    // map work a resumed or repeated sweep no longer does.
    let set = sweep_set();
    let mut group = c.benchmark_group("sweep_stage_cache");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let cache = StageCache::in_memory();
            black_box(run_scenarios_cached(set.scenarios(), 2, &Probe::disabled(), &cache))
        })
    });
    let warm = StageCache::in_memory();
    run_scenarios_cached(set.scenarios(), 2, &Probe::disabled(), &warm);
    group.bench_function("warm", |b| {
        b.iter(|| black_box(run_scenarios_cached(set.scenarios(), 2, &Probe::disabled(), &warm)))
    });
    group.finish();
}

fn bench_eval_context(c: &mut Criterion) {
    // The swap-descent hot path: repeated evaluation of placements of one
    // problem. The cached context skips quadrant-DAG rebuilds and reuses
    // scratch buffers; the uncached row is the pre-context code path.
    let problem = vopd_instance();
    let mapping = initialize(&problem);
    let mut group = c.benchmark_group("eval_vopd");
    group.bench_function("route_uncached", |b| {
        b.iter(|| black_box(routing::route_min_paths(&problem, &mapping).unwrap().1.max()))
    });
    let mut ctx = EvalContext::new(&problem);
    group.bench_function("route_cached_ctx", |b| {
        b.iter(|| black_box(ctx.route_min_loads(&mapping).unwrap().max()))
    });
    group.finish();
}

fn bench_single_path_with_context(c: &mut Criterion) {
    // Full mapper runs sharing one context across iterations — the way
    // the DSE engine amortizes cache warm-up across a sweep.
    let problem = vopd_instance();
    let mut group = c.benchmark_group("nmap_vopd_paper_exact");
    group.sample_size(10);
    group.bench_function("fresh_context", |b| {
        b.iter(|| black_box(map_single_path(&problem, &SinglePathOptions::paper_exact()).unwrap()))
    });
    let mut ctx = EvalContext::new(&problem);
    group.bench_function("shared_context", |b| {
        b.iter(|| {
            black_box(map_single_path_with(&mut ctx, &SinglePathOptions::paper_exact()).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sweep_runner,
    bench_stage_cache,
    bench_eval_context,
    bench_single_path_with_context
);
criterion_main!(benches);
