//! `grid_dims` — cost of the grid abstraction as the rank grows: routing
//! and the swap-delta kernel at a **fixed node count** (64) factored as a
//! 2-D `8x8`, a 3-D `4x4x4` and a 4-D `4x4x2x2` grid, mesh and torus.
//!
//! The closed-form hop distance is a per-axis sum, so higher ranks pay a
//! few extra adds per query but route shorter paths (smaller diameter);
//! this group keeps both effects visible so a regression in the generic
//! code paths cannot hide behind the refactor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use nmap::{initialize, EvalContext, MappingProblem};
use noc_graph::{NodeId, RandomGraphConfig, Topology};

/// The factorizations of 64 nodes under test, labeled by their spelling.
fn fabrics(torus: bool) -> Vec<(String, Topology)> {
    [vec![8, 8], vec![4, 4, 4], vec![4, 4, 2, 2]]
        .into_iter()
        .map(|dims| {
            let label: Vec<String> = dims.iter().map(usize::to_string).collect();
            let kind = if torus { "torus" } else { "mesh" };
            let topology = if torus {
                Topology::torus_nd(&dims, 1e9).expect("valid dims")
            } else {
                Topology::mesh_nd(&dims, 1e9).expect("valid dims")
            };
            (format!("{kind}{}", label.join("x")), topology)
        })
        .collect()
}

/// A 48-core random instance on the given 64-node fabric.
fn instance(topology: Topology) -> MappingProblem {
    let graph = RandomGraphConfig { cores: 48, ..Default::default() }.generate(5);
    MappingProblem::new(graph, topology).expect("48 cores fit 64 nodes")
}

/// Cached min-path routing (the evaluation hot path) per fabric rank.
fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_dims_route");
    for torus in [false, true] {
        for (label, topology) in fabrics(torus) {
            let problem = instance(topology);
            let mapping = initialize(&problem);
            let mut ctx = EvalContext::new(&problem);
            // Warm the orthant-DAG cache so the steady state is measured.
            ctx.route_min_loads(&mapping).unwrap();
            group.bench_with_input(BenchmarkId::from_parameter(&label), &label, |b, _| {
                b.iter(|| black_box(ctx.route_min_loads(&mapping).unwrap().max()))
            });
        }
    }
    group.finish();
}

/// The O(deg) swap-delta kernel per fabric rank: a full sweep over all
/// node pairs (the move set of one swap-descent pass).
fn bench_swap_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_dims_swap_delta");
    for torus in [false, true] {
        for (label, topology) in fabrics(torus) {
            let problem = instance(topology);
            let mapping = initialize(&problem);
            let ctx = EvalContext::new(&problem);
            let n = problem.topology().node_count();
            group.bench_with_input(BenchmarkId::from_parameter(&label), &label, |b, _| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for i in 0..n {
                        for j in (i + 1)..n {
                            acc +=
                                ctx.swap_delta(&mapping, NodeId::new(i), NodeId::new(j)).to_f64();
                        }
                    }
                    black_box(acc)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(grid_dims, bench_route, bench_swap_delta);
criterion_main!(grid_dims);
