//! Mapping-algorithm benchmarks: the paper's "fast algorithm" claim
//! (Section 5: NMAP completes in seconds where the routing ILP takes
//! minutes; Table 2's scale sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{random_instance_25, vopd_instance};
use nmap::{initialize, map_single_path, map_with_splitting, routing, SinglePathOptions};
use nmap::{PathScope, SplitOptions};
use noc_baselines::{gmap, pbb, pmap, PbbOptions};
use noc_graph::{RandomGraphConfig, Topology};

fn bench_initialize(c: &mut Criterion) {
    let vopd = vopd_instance();
    let rand25 = random_instance_25();
    let mut group = c.benchmark_group("initialize");
    group.bench_function("vopd_16c", |b| b.iter(|| black_box(initialize(&vopd))));
    group.bench_function("random_25c", |b| b.iter(|| black_box(initialize(&rand25))));
    group.finish();
}

fn bench_router(c: &mut Criterion) {
    let vopd = vopd_instance();
    let mapping = initialize(&vopd);
    c.bench_function("route_min_paths/vopd_16c", |b| {
        b.iter(|| black_box(routing::route_min_paths(&vopd, &mapping).unwrap()))
    });
}

fn bench_single_path_mappers(c: &mut Criterion) {
    let vopd = vopd_instance();
    let mut group = c.benchmark_group("mappers_vopd");
    group.sample_size(10);
    group.bench_function("nmap_paper_exact", |b| {
        b.iter(|| black_box(map_single_path(&vopd, &SinglePathOptions::paper_exact()).unwrap()))
    });
    group.bench_function("nmap_default", |b| {
        b.iter(|| black_box(map_single_path(&vopd, &SinglePathOptions::default()).unwrap()))
    });
    group.bench_function("pmap", |b| b.iter(|| black_box(pmap(&vopd))));
    group.bench_function("gmap", |b| b.iter(|| black_box(gmap(&vopd))));
    group.bench_function("pbb_small_budget", |b| {
        b.iter(|| black_box(pbb(&vopd, &PbbOptions { max_queue: 1_000, max_expansions: 10_000 })))
    });
    group.finish();
}

fn bench_split_mapper(c: &mut Criterion) {
    // Split mapping solves O(|U|^2) LPs; bench on the small PIP app.
    let problem =
        nmap::MappingProblem::new(noc_apps::pip(), noc_graph::Topology::mesh(3, 3, 1_000.0))
            .unwrap();
    let mut group = c.benchmark_group("map_with_splitting_pip");
    group.sample_size(10);
    group.bench_function("quadrant", |b| {
        b.iter(|| {
            black_box(
                map_with_splitting(
                    &problem,
                    &SplitOptions { scope: PathScope::Quadrant, passes: 1 },
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_nmap_scaling(c: &mut Criterion) {
    // Table 2's independent variable: core count.
    let mut group = c.benchmark_group("nmap_scaling");
    group.sample_size(10);
    for cores in [15usize, 25, 35] {
        let graph = RandomGraphConfig { cores, ..Default::default() }.generate(7);
        let (w, h) = Topology::fit_mesh_dims(cores);
        let problem = nmap::MappingProblem::new(graph, Topology::mesh(w, h, 1e9)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(cores), &problem, |b, p| {
            b.iter(|| black_box(map_single_path(p, &SinglePathOptions::paper_exact()).unwrap()))
        });
    }
    group.finish();
}

/// The swap-delta claim: the O(deg) delta-gated descent kernel beats the
/// full-recompute kernel on the Table-2 workloads (bundled apps and the
/// random-graph family) while producing bit-identical outcomes (pinned
/// by `crates/core/tests/swap_delta_identity.rs` — here we only measure).
fn bench_swap_delta_kernels(c: &mut Criterion) {
    use nmap::{map_single_path_kernel, EvalContext, SwapKernel};

    let mut group = c.benchmark_group("swap_delta");
    group.sample_size(10);
    let mut instances = vec![("vopd_16c".to_string(), vopd_instance())];
    for cores in [25usize, 35, 50] {
        let graph = RandomGraphConfig { cores, ..Default::default() }.generate(7);
        let (w, h) = Topology::fit_mesh_dims(cores);
        let problem = nmap::MappingProblem::new(graph, Topology::mesh(w, h, 1e9)).unwrap();
        instances.push((format!("random_{cores}c"), problem));
    }
    // Sweep-realistic effort (multiple passes and restarts): the descent
    // dominates over the shared initialize()/routing fixed costs, which
    // both kernels pay identically.
    let options = SinglePathOptions { passes: 2, restarts: 4 };
    for (label, problem) in &instances {
        for (kernel_label, kernel) in
            [("full", SwapKernel::FullRecompute), ("delta", SwapKernel::DeltaGated)]
        {
            group.bench_function(BenchmarkId::new(kernel_label, label), |b| {
                b.iter(|| {
                    black_box(
                        map_single_path_kernel(&mut EvalContext::new(problem), &options, kernel)
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

/// The kernel's customers: the SA and tabu searches propose/scan moves
/// through `swap_delta`, so their cost is dominated by O(deg) work.
fn bench_search_mappers(c: &mut Criterion) {
    use nmap::search::{Mapper, SaMapper, SaOptions, TabuMapper, TabuOptions};
    use nmap::EvalContext;

    let vopd = vopd_instance();
    let mut group = c.benchmark_group("search_mappers_vopd");
    group.sample_size(10);
    group.bench_function("sa_default", |b| {
        let mapper = SaMapper::new(SaOptions::default(), 7);
        b.iter(|| black_box(mapper.map(&mut EvalContext::new(&vopd)).unwrap()))
    });
    group.bench_function("tabu_default", |b| {
        let mapper = TabuMapper::new(TabuOptions::default());
        b.iter(|| black_box(mapper.map(&mut EvalContext::new(&vopd)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_initialize,
    bench_router,
    bench_single_path_mappers,
    bench_split_mapper,
    bench_nmap_scaling,
    bench_swap_delta_kernels,
    bench_search_mappers
);
criterion_main!(benches);
