//! Mapping-algorithm benchmarks: the paper's "fast algorithm" claim
//! (Section 5: NMAP completes in seconds where the routing ILP takes
//! minutes; Table 2's scale sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{random_instance_25, vopd_instance};
use nmap::{initialize, map_single_path, map_with_splitting, routing, SinglePathOptions};
use nmap::{PathScope, SplitOptions};
use noc_baselines::{gmap, pbb, pmap, PbbOptions};
use noc_graph::{RandomGraphConfig, Topology};

fn bench_initialize(c: &mut Criterion) {
    let vopd = vopd_instance();
    let rand25 = random_instance_25();
    let mut group = c.benchmark_group("initialize");
    group.bench_function("vopd_16c", |b| b.iter(|| black_box(initialize(&vopd))));
    group.bench_function("random_25c", |b| b.iter(|| black_box(initialize(&rand25))));
    group.finish();
}

fn bench_router(c: &mut Criterion) {
    let vopd = vopd_instance();
    let mapping = initialize(&vopd);
    c.bench_function("route_min_paths/vopd_16c", |b| {
        b.iter(|| black_box(routing::route_min_paths(&vopd, &mapping).unwrap()))
    });
}

fn bench_single_path_mappers(c: &mut Criterion) {
    let vopd = vopd_instance();
    let mut group = c.benchmark_group("mappers_vopd");
    group.sample_size(10);
    group.bench_function("nmap_paper_exact", |b| {
        b.iter(|| black_box(map_single_path(&vopd, &SinglePathOptions::paper_exact()).unwrap()))
    });
    group.bench_function("nmap_default", |b| {
        b.iter(|| black_box(map_single_path(&vopd, &SinglePathOptions::default()).unwrap()))
    });
    group.bench_function("pmap", |b| b.iter(|| black_box(pmap(&vopd))));
    group.bench_function("gmap", |b| b.iter(|| black_box(gmap(&vopd))));
    group.bench_function("pbb_small_budget", |b| {
        b.iter(|| black_box(pbb(&vopd, &PbbOptions { max_queue: 1_000, max_expansions: 10_000 })))
    });
    group.finish();
}

fn bench_split_mapper(c: &mut Criterion) {
    // Split mapping solves O(|U|^2) LPs; bench on the small PIP app.
    let problem =
        nmap::MappingProblem::new(noc_apps::pip(), noc_graph::Topology::mesh(3, 3, 1_000.0))
            .unwrap();
    let mut group = c.benchmark_group("map_with_splitting_pip");
    group.sample_size(10);
    group.bench_function("quadrant", |b| {
        b.iter(|| {
            black_box(
                map_with_splitting(
                    &problem,
                    &SplitOptions { scope: PathScope::Quadrant, passes: 1 },
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_nmap_scaling(c: &mut Criterion) {
    // Table 2's independent variable: core count.
    let mut group = c.benchmark_group("nmap_scaling");
    group.sample_size(10);
    for cores in [15usize, 25, 35] {
        let graph = RandomGraphConfig { cores, ..Default::default() }.generate(7);
        let (w, h) = Topology::fit_mesh_dims(cores);
        let problem = nmap::MappingProblem::new(graph, Topology::mesh(w, h, 1e9)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(cores), &problem, |b, p| {
            b.iter(|| black_box(map_single_path(p, &SinglePathOptions::paper_exact()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_initialize,
    bench_router,
    bench_single_path_mappers,
    bench_split_mapper,
    bench_nmap_scaling
);
criterion_main!(benches);
