//! Property-based tests for the simulator: conservation, stability and
//! determinism over randomized flow sets on random meshes.

use noc_graph::{NodeId, Topology};
use noc_sim::{FlowSpec, SimConfig, Simulator};
use proptest::prelude::*;

/// Builds an XY path between two nodes of a mesh (always valid).
fn xy_path(t: &Topology, from: NodeId, to: NodeId) -> Vec<noc_graph::LinkId> {
    let (mut x, mut y) = t.coords(from);
    let (tx, ty) = t.coords(to);
    let mut links = Vec::new();
    let mut at = from;
    while x != tx {
        let nx = if tx > x { x + 1 } else { x - 1 };
        let next = t.node_at(nx, y).expect("in range");
        links.push(t.find_link(at, next).expect("mesh link"));
        at = next;
        x = nx;
    }
    while y != ty {
        let ny = if ty > y { y + 1 } else { y - 1 };
        let next = t.node_at(x, ny).expect("in range");
        links.push(t.find_link(at, next).expect("mesh link"));
        at = next;
        y = ny;
    }
    links
}

fn quick_config(seed: u64) -> SimConfig {
    SimConfig {
        warmup_cycles: 500,
        measure_cycles: 6_000,
        drain_cycles: 6_000,
        seed,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under light load every generated packet is delivered, none are
    /// dropped, and latency stats only cover measured packets.
    #[test]
    fn light_load_conserves_packets(
        (w, h) in (2usize..=4, 2usize..=4),
        pairs in prop::collection::vec((0usize..16, 0usize..16, 20.0..120.0f64), 1..5),
        seed in 0u64..100,
    ) {
        let t = Topology::mesh(w, h, 1_000.0);
        let n = t.node_count();
        let flows: Vec<FlowSpec> = pairs
            .into_iter()
            .filter_map(|(a, b, rate)| {
                let from = NodeId::new(a % n);
                let to = NodeId::new(b % n);
                (from != to).then(|| {
                    FlowSpec::single_path(from, to, noc_units::mbps(rate), xy_path(&t, from, to))
                })
            })
            .collect();
        prop_assume!(!flows.is_empty());
        let mut sim = Simulator::new(&t, flows, quick_config(seed));
        let report = sim.run();
        prop_assert_eq!(report.dropped_packets, 0);
        prop_assert_eq!(report.delivered_packets, report.generated_packets);
        prop_assert_eq!(report.unfinished_measured_packets, 0);
        prop_assert!(report.latency.count() <= report.delivered_packets);
        if report.latency.count() > 0 {
            prop_assert!(report.avg_latency_cycles() >= report.avg_network_latency_cycles());
        }
    }

    /// The same seed reproduces the identical report; different seeds may
    /// differ but never violate conservation.
    #[test]
    fn determinism_under_random_flows(
        (w, h) in (2usize..=3, 2usize..=3),
        a in 0usize..9,
        b in 0usize..9,
        rate in 50.0..400.0f64,
        seed in 0u64..50,
    ) {
        let t = Topology::mesh(w, h, 800.0);
        let n = t.node_count();
        let from = NodeId::new(a % n);
        let to = NodeId::new(b % n);
        prop_assume!(from != to);
        let mk = || vec![FlowSpec::single_path(from, to, noc_units::mbps(rate), xy_path(&t, from, to))];
        let r1 = Simulator::new(&t, mk(), quick_config(seed)).run();
        let r2 = Simulator::new(&t, mk(), quick_config(seed)).run();
        prop_assert_eq!(r1, r2);
    }

    /// Splitting a flow across two disjoint paths never loses packets and
    /// the per-link flit counts respect the requested shares.
    #[test]
    fn split_flows_conserve_and_share(
        share in 1.0..4.0f64,
        rate in 100.0..300.0f64,
        seed in 0u64..50,
    ) {
        let t = Topology::mesh(2, 2, 1_000.0);
        let from = NodeId::new(0);
        let to = NodeId::new(3);
        let p1 = xy_path(&t, from, to); // right, then down
        let p2 = vec![
            t.find_link(NodeId::new(0), NodeId::new(2)).unwrap(),
            t.find_link(NodeId::new(2), NodeId::new(3)).unwrap(),
        ];
        let flow = FlowSpec::split(from, to, noc_units::mbps(rate), vec![(p1.clone(), share), (p2.clone(), 1.0)]);
        let config = SimConfig {
            warmup_cycles: 500,
            measure_cycles: 40_000,
            drain_cycles: 6_000,
            seed,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&t, vec![flow], config);
        let report = sim.run();
        prop_assert_eq!(report.dropped_packets, 0);
        prop_assert_eq!(report.delivered_packets, report.generated_packets);
        let f1 = report.link_flits[p1[0].index()] as f64;
        let f2 = report.link_flits[p2[0].index()] as f64;
        prop_assume!(f1 + f2 > 500.0); // enough samples for a stable share
        let want = share / (share + 1.0);
        let got = f1 / (f1 + f2);
        prop_assert!((got - want).abs() < 0.08, "share {got:.3}, wanted {want:.3}");
    }
}
