//! Differential oracle harness for the event-driven simulator loop.
//!
//! The event/tick-queue loop ([`LoopKind::EventQueue`], the default) must
//! be **bit-identical** to the cycle-stepped oracle loops retained for
//! exactly this purpose ([`LoopKind::FullScan`], [`LoopKind::ActiveSet`]):
//! every field of the [`SimReport`] — including every `f64`, compared
//! exactly, never with a tolerance — has to match on every workload. This
//! suite drives all three loops over the paper's six benchmark
//! applications plus the DSP filter design, and over seeded random
//! traffic, across warm-up/measure/drain window shapes from degenerate
//! (zero warm-up, zero drain) to contended (saturating bandwidth).
//!
//! Style follows the repo's oracle-retention convention (`nmap`'s
//! `swap_delta_identity` and `dor_xy_equivalence` suites): the old
//! implementation is kept alive as the spec of the new one.

use noc_apps::{dsp_filter, App};
use noc_graph::{CoreGraph, NodeId, Topology};
use noc_sim::{FlowSpec, LoopKind, SimConfig, SimReport, Simulator};
use noc_units::mbps;

/// Builds an XY path between two nodes of a mesh (always valid).
fn xy_path(t: &Topology, from: NodeId, to: NodeId) -> Vec<noc_graph::LinkId> {
    let (mut x, mut y) = t.coords(from);
    let (tx, ty) = t.coords(to);
    let mut links = Vec::new();
    let mut at = from;
    while x != tx {
        let nx = if tx > x { x + 1 } else { x - 1 };
        let next = t.node_at(nx, y).expect("in range");
        links.push(t.find_link(at, next).expect("mesh link"));
        at = next;
        x = nx;
    }
    while y != ty {
        let ny = if ty > y { y + 1 } else { y - 1 };
        let next = t.node_at(x, ny).expect("in range");
        links.push(t.find_link(at, next).expect("mesh link"));
        at = next;
        y = ny;
    }
    links
}

/// Identity placement (core `i` on node `i`) of an application graph onto
/// a mesh, XY-routed: one simulator flow per core-graph edge at the
/// edge's average bandwidth. The placement is deliberately naive — the
/// identity suite tests the simulator, not the mapper, and a naive
/// placement produces *more* link contention, which is exactly where the
/// wake-up logic of the event loop can go wrong.
fn app_flows(t: &Topology, graph: &CoreGraph) -> Vec<FlowSpec> {
    assert!(graph.core_count() <= t.node_count(), "app must fit the mesh");
    graph
        .edges()
        .map(|(_, e)| {
            let from = NodeId::new(e.src.index());
            let to = NodeId::new(e.dst.index());
            FlowSpec::single_path(from, to, e.bandwidth, xy_path(t, from, to))
        })
        .collect()
}

/// Runs `flows` on `t` under every loop kind and asserts the reports
/// are bit-identical, returning the oracle report.
fn assert_identical(
    t: &Topology,
    flows: &[FlowSpec],
    config: &SimConfig,
    label: &str,
) -> SimReport {
    let run = |kind: LoopKind| {
        let mut sim = Simulator::new(t, flows.to_vec(), config.clone());
        sim.set_loop_kind(kind);
        sim.run()
    };
    let oracle = run(LoopKind::FullScan);
    for kind in [LoopKind::ActiveSet, LoopKind::EventQueue, LoopKind::Hybrid] {
        let report = run(kind);
        assert_eq!(report, oracle, "{label}: {kind:?} diverged from the full-scan oracle");
    }
    oracle
}

/// Window shapes the loops must agree on: the steady-state default-style
/// window, a zero-warm-up window (statistics from cycle 0), and a
/// zero-drain window (in-flight measured packets left unfinished — the
/// report's `unfinished_measured_packets` path).
fn window_configs(seed: u64) -> [SimConfig; 3] {
    let base = SimConfig { seed, ..SimConfig::default() };
    [
        SimConfig {
            warmup_cycles: 1_000,
            measure_cycles: 8_000,
            drain_cycles: 4_000,
            ..base.clone()
        },
        SimConfig { warmup_cycles: 0, measure_cycles: 6_000, drain_cycles: 3_000, ..base.clone() },
        SimConfig { warmup_cycles: 800, measure_cycles: 5_000, drain_cycles: 0, ..base },
    ]
}

#[test]
fn six_paper_apps_are_bit_identical_across_loops() {
    for app in App::all() {
        let graph = app.core_graph();
        let (w, h) = app.mesh_dims();
        // Two bandwidth regimes per app: comfortable (light contention)
        // and tight (heavy blocking, the hard case for wake-up
        // completeness). The tight capacity still clears each flow's own
        // rate so the sources are not trivially saturated at injection.
        let max_rate = graph.edges().map(|(_, e)| e.bandwidth.to_f64()).fold(0.0, f64::max);
        for capacity in [max_rate * 4.0, max_rate * 1.25] {
            let t = Topology::mesh(w, h, capacity);
            let flows = app_flows(&t, &graph);
            for config in window_configs(0xA0C0_FFEE ^ capacity.to_bits()) {
                let report = assert_identical(
                    &t,
                    &flows,
                    &config,
                    &format!("{} @ {capacity} MB/s", app.name()),
                );
                assert!(report.generated_packets > 0, "{}: silent run proves nothing", app.name());
            }
        }
    }
}

#[test]
fn dsp_filter_design_is_bit_identical_across_loops() {
    // The DSP filter is the paper's simulation workload (Figure 5); sweep
    // it across the Figure 5(c) bandwidth range endpoints plus a
    // saturating point below Table 3's 600 MB/s min-path requirement.
    let graph = dsp_filter();
    let t_dims = Topology::fit_mesh_dims(graph.core_count());
    for bw in [550.0, 1_100.0, 1_800.0] {
        let t = Topology::mesh(t_dims.0, t_dims.1, bw);
        let flows = app_flows(&t, &graph);
        for config in window_configs(7) {
            assert_identical(&t, &flows, &config, &format!("dsp @ {bw} MB/s"));
        }
    }
}

#[test]
fn hybrid_switches_to_stepping_on_dense_loads() {
    // A saturating DSP-filter load keeps nearly every cycle busy, so the
    // hybrid loop must abandon the tick queue mid-run. After the switch
    // it steps through cycles the event loop would have skipped (the
    // drain tail especially), so it executes strictly more cycles —
    // proving the fall-back fired — while the report stays bit-identical.
    let graph = dsp_filter();
    let (w, h) = Topology::fit_mesh_dims(graph.core_count());
    let t = Topology::mesh(w, h, 550.0);
    let flows = app_flows(&t, &graph);
    let config = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 8_000,
        drain_cycles: 4_000,
        seed: 7,
        ..SimConfig::default()
    };
    let run = |kind: LoopKind| {
        let mut sim = Simulator::new(&t, flows.clone(), config.clone());
        sim.set_loop_kind(kind);
        (sim.run(), sim.executed_cycles())
    };
    let (event_report, event_executed) = run(LoopKind::EventQueue);
    let (hybrid_report, hybrid_executed) = run(LoopKind::Hybrid);
    assert_eq!(hybrid_report, event_report, "hybrid diverged on the dense load");
    assert!(
        hybrid_executed > event_executed,
        "hybrid never fell back: executed {hybrid_executed} vs event-queue {event_executed}"
    );
}

/// Tiny deterministic generator for the random-traffic leg (no RNG crate
/// in the test: the identity property must not depend on rand internals).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn seeded_random_traffic_is_bit_identical_across_loops() {
    for seed in 0u64..6 {
        let mut state = 0xDEAD_BEEF ^ seed;
        let w = 2 + (splitmix64(&mut state) % 3) as usize; // 2..=4
        let h = 2 + (splitmix64(&mut state) % 3) as usize;
        let t = Topology::mesh(w, h, 900.0);
        let n = t.node_count();
        let flow_count = 2 + (splitmix64(&mut state) % 5) as usize;
        let mut flows = Vec::new();
        while flows.len() < flow_count {
            let from = NodeId::new((splitmix64(&mut state) as usize) % n);
            let to = NodeId::new((splitmix64(&mut state) as usize) % n);
            if from == to {
                continue;
            }
            let rate = 40.0 + (splitmix64(&mut state) % 400) as f64;
            flows.push(FlowSpec::single_path(from, to, mbps(rate), xy_path(&t, from, to)));
        }
        // Vary the traffic-process shape too: burstier sources stress the
        // source-fire scheduling, longer bursts the back-to-back case.
        let burst_packets = 1 + (splitmix64(&mut state) % 16) as u32;
        let burst_intensity = 1.0 + (splitmix64(&mut state) % 50) as f64 / 10.0;
        for mut config in window_configs(seed.wrapping_mul(0x51_7C_C1)) {
            config.burst_packets = burst_packets;
            config.burst_intensity = burst_intensity;
            assert_identical(&t, &flows, &config, &format!("random traffic seed {seed}"));
        }
    }
}

#[test]
fn split_flows_are_bit_identical_across_loops() {
    // Split routing multiplexes one source over several paths — the
    // Figure 5(c) split design's traffic shape.
    let t = Topology::mesh(3, 2, 700.0);
    let from = NodeId::new(0);
    let to = NodeId::new(5);
    let p1 = xy_path(&t, from, to);
    let mid = NodeId::new(3);
    let mut p2 = xy_path(&t, from, mid);
    p2.extend(xy_path(&t, mid, to));
    let flows = vec![
        FlowSpec::split(from, to, mbps(600.0), vec![(p1, 2.0), (p2, 1.0)]),
        FlowSpec::single_path(
            NodeId::new(4),
            NodeId::new(1),
            mbps(150.0),
            xy_path(&t, NodeId::new(4), NodeId::new(1)),
        ),
    ];
    for config in window_configs(42) {
        assert_identical(&t, &flows, &config, "split flow");
    }
}
