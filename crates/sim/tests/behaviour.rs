//! Behavioural tests for the wormhole simulator: analytic latency floors,
//! packet conservation, backpressure and wormhole blocking scenarios.

use noc_graph::{LinkId, NodeId, Topology};
use noc_sim::{FlowSpec, SimConfig, Simulator};
use noc_units::mbps;

fn path(t: &Topology, hops: &[(usize, usize)]) -> Vec<LinkId> {
    hops.iter().map(|&(a, b)| t.find_link(NodeId::new(a), NodeId::new(b)).expect("link")).collect()
}

fn quick(measure: u64) -> SimConfig {
    SimConfig {
        warmup_cycles: 2_000,
        measure_cycles: measure,
        drain_cycles: 10_000,
        ..SimConfig::default()
    }
}

/// Hard lower bound for an uncontended packet's network latency: the tail
/// flit cannot leave the source link before all preceding flits have been
/// serialized, minus the two-flit token credit an idle link accrues.
fn serialization_floor(config: &SimConfig, bandwidth_mbps: f64) -> f64 {
    let cycles_per_flit =
        config.flit_bytes as f64 / SimConfig::bytes_per_cycle(mbps(bandwidth_mbps));
    (config.flits_per_packet() as f64 - 2.0) * cycles_per_flit
}

/// Generous upper estimate at light load: serialization of every flit
/// plus the full pipeline at every hop (including ejection), with no
/// overlap credit.
fn latency_ceiling(config: &SimConfig, hops: usize, bandwidth_mbps: f64) -> f64 {
    let cycles_per_flit =
        config.flit_bytes as f64 / SimConfig::bytes_per_cycle(mbps(bandwidth_mbps));
    (hops as f64 + 1.0) * (config.router_pipeline_cycles as f64 + cycles_per_flit)
        + config.flits_per_packet() as f64 * cycles_per_flit
}

#[test]
fn network_latency_respects_analytic_bounds() {
    let t = Topology::mesh(3, 3, 1_000.0);
    let config = quick(30_000);
    let flow = FlowSpec::single_path(
        NodeId::new(0),
        NodeId::new(2),
        mbps(50.0), // light load: queueing negligible
        path(&t, &[(0, 1), (1, 2)]),
    );
    let mut sim = Simulator::new(&t, vec![flow], config.clone());
    let report = sim.run();
    let floor = serialization_floor(&config, 1_000.0);
    let ceiling = latency_ceiling(&config, 2, 1_000.0);
    let measured = report.avg_network_latency_cycles().to_f64();
    assert!(measured >= floor, "network latency {measured} below serialization floor {floor}");
    assert!(measured <= ceiling, "network latency {measured} above light-load ceiling {ceiling}");
}

#[test]
fn packets_are_conserved() {
    let t = Topology::mesh(3, 3, 1_000.0);
    let flows = vec![
        FlowSpec::single_path(
            NodeId::new(0),
            NodeId::new(2),
            mbps(300.0),
            path(&t, &[(0, 1), (1, 2)]),
        ),
        FlowSpec::single_path(
            NodeId::new(6),
            NodeId::new(8),
            mbps(300.0),
            path(&t, &[(6, 7), (7, 8)]),
        ),
        FlowSpec::single_path(
            NodeId::new(0),
            NodeId::new(6),
            mbps(200.0),
            path(&t, &[(0, 3), (3, 6)]),
        ),
    ];
    let mut sim = Simulator::new(&t, flows, quick(50_000));
    let report = sim.run();
    assert_eq!(report.dropped_packets, 0);
    // Everything generated is delivered once the drain window passes
    // (loads are far below capacity).
    assert_eq!(report.delivered_packets, report.generated_packets);
    assert_eq!(report.unfinished_measured_packets, 0);
}

#[test]
fn latency_decreases_with_bandwidth() {
    let mut previous = f64::INFINITY;
    for bw in [600.0, 900.0, 1_400.0] {
        let t = Topology::mesh(2, 2, bw);
        let flow = FlowSpec::single_path(
            NodeId::new(0),
            NodeId::new(3),
            mbps(200.0),
            path(&t, &[(0, 1), (1, 3)]),
        );
        let mut sim = Simulator::new(&t, vec![flow], quick(30_000));
        let report = sim.run();
        let latency = report.avg_latency_cycles().to_f64();
        assert!(
            latency < previous,
            "latency {latency} did not improve at {bw} MB/s (was {previous})"
        );
        previous = latency;
    }
}

#[test]
fn wormhole_blocking_propagates_upstream() {
    // Two flows: A crosses the middle column vertically, B rides the top
    // row through the same router (node 1). When B's destination link is
    // saturated by a third flow, B's packets block in node 1's input
    // buffer and A (sharing that buffer's upstream link) slows too —
    // the domino effect the paper attributes to wormhole flow control.
    let t = Topology::mesh(3, 2, 400.0);
    let a_alone = FlowSpec::single_path(
        NodeId::new(0),
        NodeId::new(2),
        mbps(150.0),
        path(&t, &[(0, 1), (1, 2)]),
    );
    let b = FlowSpec::single_path(
        NodeId::new(0),
        NodeId::new(5),
        mbps(150.0),
        path(&t, &[(0, 1), (1, 4), (4, 5)]),
    );
    // Saturator on (4,5): consumes most of that link.
    let sat = FlowSpec::single_path(
        NodeId::new(1),
        NodeId::new(5),
        mbps(330.0),
        path(&t, &[(1, 4), (4, 5)]),
    );

    let solo = Simulator::new(&t, vec![a_alone.clone()], quick(40_000)).run();
    let jammed = Simulator::new(&t, vec![a_alone, b, sat], quick(40_000)).run();
    assert!(
        jammed.per_flow_latency[0].mean() > solo.per_flow_latency[0].mean() * 1.05,
        "flow A unaffected by downstream congestion: solo {} vs jammed {}",
        solo.per_flow_latency[0].mean(),
        jammed.per_flow_latency[0].mean()
    );
}

#[test]
fn split_flow_shares_match_weights_in_delivery() {
    let t = Topology::mesh(2, 2, 1_000.0);
    let direct = path(&t, &[(0, 1)]);
    let detour = path(&t, &[(0, 2), (2, 3), (3, 1)]);
    let flow = FlowSpec::split(
        NodeId::new(0),
        NodeId::new(1),
        mbps(300.0),
        vec![(direct.clone(), 2.0), (detour.clone(), 1.0)],
    );
    let mut sim = Simulator::new(&t, vec![flow], quick(60_000));
    let report = sim.run();
    let f_direct = report.link_flits[direct[0].index()] as f64;
    let f_detour = report.link_flits[detour[0].index()] as f64;
    let share = f_direct / (f_direct + f_detour);
    assert!((share - 2.0 / 3.0).abs() < 0.05, "direct share {share}, want 0.667");
}

#[test]
fn saturation_flag_tracks_overload() {
    let t = Topology::mesh(2, 1, 200.0);
    let l = path(&t, &[(0, 1)]);
    let light = FlowSpec::single_path(NodeId::new(0), NodeId::new(1), mbps(100.0), l.clone());
    let heavy = FlowSpec::single_path(NodeId::new(0), NodeId::new(1), mbps(500.0), l);
    assert!(!Simulator::new(&t, vec![light], quick(30_000)).run().saturated());
    assert!(Simulator::new(&t, vec![heavy], quick(30_000)).run().saturated());
}

#[test]
fn per_flow_stats_cover_all_flows() {
    let t = Topology::mesh(2, 2, 1_000.0);
    let flows = vec![
        FlowSpec::single_path(NodeId::new(0), NodeId::new(1), mbps(100.0), path(&t, &[(0, 1)])),
        FlowSpec::single_path(NodeId::new(2), NodeId::new(3), mbps(100.0), path(&t, &[(2, 3)])),
    ];
    let mut sim = Simulator::new(&t, flows, quick(30_000));
    let report = sim.run();
    assert_eq!(report.per_flow_latency.len(), 2);
    for (i, stats) in report.per_flow_latency.iter().enumerate() {
        assert!(stats.count() > 0, "flow {i} has no samples");
    }
    // Full latency includes the network component.
    assert!(report.avg_latency_cycles() >= report.avg_network_latency_cycles());
}

#[test]
fn single_hop_flow_on_torus_wrap_link() {
    let t = Topology::torus(4, 4, 800.0);
    let a = t.node_at(0, 0).unwrap();
    let b = t.node_at(3, 0).unwrap();
    let wrap = t.find_link(b, a).unwrap();
    let flow = FlowSpec::single_path(b, a, mbps(200.0), vec![wrap]);
    let mut sim = Simulator::new(&t, vec![flow], quick(20_000));
    let report = sim.run();
    assert!(report.delivered_packets > 0);
    assert_eq!(report.dropped_packets, 0);
}
