//! Acceptance invariants for the simulator's probe counters (PR 7).
//!
//! The counters are strictly out-of-band, so their correctness is pinned
//! here against the quantities the simulator itself reports:
//!
//! * executed + skipped cycles sum exactly to the simulated window, and
//!   the window agrees across every [`LoopKind`] (the loops are
//!   bit-identical, so they simulate the same cycles);
//! * the cycle-stepped oracle loops execute every cycle and schedule
//!   nothing (all wake counters zero);
//! * the event-queue loop's queue insertions (near-mask + heap hits)
//!   cover at least its executed ticks — every executed tick was
//!   scheduled by someone — and the wake-reason tallies (taken before
//!   the tick queue's dedup) cover every insertion.
//!
//! The whole suite needs the `probe` cargo feature: without it the
//! counters compile to no-ops and there is nothing to assert.

#![cfg(feature = "probe")]

use noc_graph::{LinkId, NodeId, Topology};
use noc_probe::{Probe, Profile};
use noc_sim::{FlowSpec, LoopKind, SimConfig, SimReport, Simulator};
use noc_units::mbps;

fn path(t: &Topology, hops: &[(usize, usize)]) -> Vec<LinkId> {
    hops.iter().map(|&(a, b)| t.find_link(NodeId::new(a), NodeId::new(b)).expect("link")).collect()
}

/// A 3×3 mesh with three crossing flows and a drain tail long enough for
/// the event queue to skip idle cycles.
fn workload() -> (Topology, Vec<FlowSpec>, SimConfig) {
    let t = Topology::mesh(3, 3, 900.0);
    let flows = vec![
        FlowSpec::single_path(
            NodeId::new(0),
            NodeId::new(2),
            mbps(300.0),
            path(&t, &[(0, 1), (1, 2)]),
        ),
        FlowSpec::single_path(
            NodeId::new(6),
            NodeId::new(8),
            mbps(250.0),
            path(&t, &[(6, 7), (7, 8)]),
        ),
        FlowSpec::single_path(
            NodeId::new(0),
            NodeId::new(6),
            mbps(150.0),
            path(&t, &[(0, 3), (3, 6)]),
        ),
    ];
    let config = SimConfig {
        warmup_cycles: 1_000,
        measure_cycles: 10_000,
        drain_cycles: 8_000,
        ..SimConfig::default()
    };
    (t, flows, config)
}

/// Runs the workload under `kind` with a live probe attached.
fn run_probed(kind: LoopKind) -> (Profile, SimReport, u64, f64) {
    let (t, flows, config) = workload();
    let mut sim = Simulator::new(&t, flows, config);
    sim.set_loop_kind(kind);
    let probe = Probe::new();
    sim.set_probe(&probe);
    let report = sim.run();
    (probe.snapshot(), report, sim.executed_cycles(), sim.executed_cycle_fraction().to_f64())
}

fn counter(profile: &Profile, name: &str) -> u64 {
    profile.counter(name).unwrap_or(0)
}

const WAKE_COUNTERS: [&str; 6] = [
    "sim.wake_source",
    "sim.wake_eligibility",
    "sim.wake_token_ready",
    "sim.wake_backpressure",
    "sim.wake_tail_release",
    "sim.wake_watchdog",
];

#[test]
fn executed_plus_skipped_covers_the_same_window_on_every_loop() {
    let mut windows = Vec::new();
    let mut reports = Vec::new();
    for kind in [LoopKind::FullScan, LoopKind::ActiveSet, LoopKind::EventQueue] {
        let (profile, report, executed_cycles, fraction) = run_probed(kind);
        let executed = counter(&profile, "sim.cycles_executed");
        let skipped = counter(&profile, "sim.cycles_skipped");
        assert_eq!(executed, executed_cycles, "{kind:?}: counter vs accessor");
        assert!(executed > 0, "{kind:?}: nothing executed");
        assert!(fraction > 0.0 && fraction <= 1.0, "{kind:?}: fraction {fraction}");
        windows.push(executed + skipped);
        reports.push(report);
    }
    assert_eq!(windows[0], windows[1], "active-set window diverged");
    assert_eq!(windows[0], windows[2], "event-queue window diverged");
    // The loops are bit-identical, so the probe cannot have perturbed
    // them: same report everywhere.
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[0], reports[2]);
}

#[test]
fn cycle_stepped_loops_execute_everything_and_never_schedule() {
    for kind in [LoopKind::FullScan, LoopKind::ActiveSet] {
        let (profile, _, _, fraction) = run_probed(kind);
        assert_eq!(counter(&profile, "sim.cycles_skipped"), 0, "{kind:?} skipped cycles");
        assert_eq!(fraction, 1.0, "{kind:?} executes every cycle");
        for name in WAKE_COUNTERS {
            assert_eq!(counter(&profile, name), 0, "{kind:?} touched {name}");
        }
        assert_eq!(counter(&profile, "sim.sched_near"), 0, "{kind:?} used the tick queue");
        assert_eq!(counter(&profile, "sim.sched_heap"), 0, "{kind:?} used the tick queue");
    }
}

#[test]
fn event_queue_wakeups_account_for_every_executed_tick() {
    let (profile, _, executed, fraction) = run_probed(LoopKind::EventQueue);
    // The drain tail goes idle, so this workload must actually skip.
    assert!(counter(&profile, "sim.cycles_skipped") > 0, "no cycles skipped");
    assert!(fraction < 1.0, "fraction {fraction} should reflect skipping");

    // Every executed tick was scheduled by at least one request (dedup
    // means requests can exceed ticks, never undershoot them).
    let sched = counter(&profile, "sim.sched_near") + counter(&profile, "sim.sched_heap");
    assert!(sched >= executed, "{sched} scheduling requests < {executed} executed ticks");

    // Wake reasons tally scheduling *requests* (before the tick queue's
    // per-component dedup); near/heap hits tally actual insertions. So
    // the reasons must cover every insertion, never undershoot them.
    let wakes: u64 = WAKE_COUNTERS.iter().map(|name| counter(&profile, name)).sum();
    assert!(wakes >= sched, "{wakes} wake requests < {sched} queue insertions");
    assert!(counter(&profile, "sim.wake_source") > 0, "sources fired");
}

#[test]
fn executed_cycle_accounting_works_without_a_probe() {
    // `executed_cycle_fraction` is the density signal for the
    // hybrid-loop roadmap item, so it must work with no probe attached
    // (and without the feature, though this suite can't observe that).
    let (t, flows, config) = workload();
    let mut sim = Simulator::new(&t, flows, config);
    sim.set_loop_kind(LoopKind::EventQueue);
    let _ = sim.run();
    assert!(sim.executed_cycles() > 0);
    let fraction = sim.executed_cycle_fraction().to_f64();
    assert!(fraction > 0.0 && fraction < 1.0, "fraction {fraction}");
}
