//! Property-based differential tests for the event-queue loop: random
//! topologies, burst configurations and bandwidth points must all produce
//! reports bit-identical to the cycle-stepped oracle, and the loop must
//! terminate at exactly the configured horizon.
//!
//! No-past-scheduling is enforced structurally: `TickQueue::schedule`
//! carries a `debug_assert` that a component is never scheduled before
//! the first unexecuted cycle, and these tests run unoptimized — any
//! wake-up computed in the past panics the property rather than silently
//! re-executing history.

use noc_graph::{NodeId, Topology};
use noc_sim::{FlowSpec, LoopKind, SimConfig, Simulator};
use proptest::prelude::*;

/// Builds an XY path between two nodes of a mesh (always valid).
fn xy_path(t: &Topology, from: NodeId, to: NodeId) -> Vec<noc_graph::LinkId> {
    let (mut x, mut y) = t.coords(from);
    let (tx, ty) = t.coords(to);
    let mut links = Vec::new();
    let mut at = from;
    while x != tx {
        let nx = if tx > x { x + 1 } else { x - 1 };
        let next = t.node_at(nx, y).expect("in range");
        links.push(t.find_link(at, next).expect("mesh link"));
        at = next;
        x = nx;
    }
    while y != ty {
        let ny = if ty > y { y + 1 } else { y - 1 };
        let next = t.node_at(x, ny).expect("in range");
        links.push(t.find_link(at, next).expect("mesh link"));
        at = next;
        y = ny;
    }
    links
}

fn run_kind(
    t: &Topology,
    flows: &[FlowSpec],
    config: &SimConfig,
    kind: LoopKind,
) -> noc_sim::SimReport {
    let mut sim = Simulator::new(t, flows.to_vec(), config.clone());
    sim.set_loop_kind(kind);
    sim.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mesh + random flows + random burst shape + random link
    /// bandwidth: the event-queue report equals the cycle-stepped oracle
    /// field for field (delivered, latency sums, saturation, per-link
    /// flit counts — everything `SimReport` carries), and both loops
    /// terminate at the same configured horizon.
    #[test]
    fn event_queue_matches_oracle_on_random_workloads(
        (w, h) in (2usize..=4, 2usize..=4),
        pairs in prop::collection::vec((0usize..16, 0usize..16, 20.0..400.0f64), 1..6),
        bandwidth in 150.0..1_500.0f64,
        burst_packets in 1u32..=16,
        burst_intensity in 1.0..6.0f64,
        (warmup, measure, drain) in (0u64..1_500, 1_000u64..6_000, 0u64..4_000),
        seed in 0u64..100,
    ) {
        let t = Topology::mesh(w, h, bandwidth);
        let n = t.node_count();
        let flows: Vec<FlowSpec> = pairs
            .into_iter()
            .filter_map(|(a, b, rate)| {
                let from = NodeId::new(a % n);
                let to = NodeId::new(b % n);
                (from != to).then(|| {
                    FlowSpec::single_path(from, to, noc_units::mbps(rate), xy_path(&t, from, to))
                })
            })
            .collect();
        prop_assume!(!flows.is_empty());
        let config = SimConfig {
            warmup_cycles: warmup,
            measure_cycles: measure,
            drain_cycles: drain,
            burst_packets,
            burst_intensity,
            seed,
            ..SimConfig::default()
        };
        let oracle = run_kind(&t, &flows, &config, LoopKind::FullScan);
        let event = run_kind(&t, &flows, &config, LoopKind::EventQueue);
        // Termination at the exact horizon, not merely "eventually".
        prop_assert_eq!(oracle.cycles, warmup + measure + drain);
        prop_assert_eq!(event.cycles, oracle.cycles);
        // The headline statistics the paper plots...
        prop_assert_eq!(event.delivered_packets, oracle.delivered_packets);
        prop_assert!(event.avg_latency_cycles() == oracle.avg_latency_cycles());
        prop_assert_eq!(event.saturated(), oracle.saturated());
        // ...and then every other field, exactly.
        prop_assert_eq!(event, oracle);
    }

    /// An idle network (all sources silent) is the degenerate case for an
    /// event loop: nothing is ever scheduled beyond the watchdog, and the
    /// run must still cover the full horizon with an all-zero report
    /// identical to the oracle's.
    #[test]
    fn silent_network_terminates_and_matches(
        (w, h) in (2usize..=3, 2usize..=3),
        (warmup, measure, drain) in (0u64..500, 100u64..2_000, 0u64..500),
        seed in 0u64..20,
    ) {
        let t = Topology::mesh(w, h, 500.0);
        let to = NodeId::new(t.node_count() - 1);
        let flows = vec![FlowSpec::single_path(
            NodeId::new(0), to, noc_units::Mbps::ZERO, xy_path(&t, NodeId::new(0), to),
        )];
        let config = SimConfig {
            warmup_cycles: warmup,
            measure_cycles: measure,
            drain_cycles: drain,
            seed,
            ..SimConfig::default()
        };
        let oracle = run_kind(&t, &flows, &config, LoopKind::FullScan);
        let event = run_kind(&t, &flows, &config, LoopKind::EventQueue);
        prop_assert_eq!(event.generated_packets, 0);
        prop_assert_eq!(event.cycles, warmup + measure + drain);
        prop_assert_eq!(event, oracle);
    }

    /// Deep saturation (offered load far above capacity) exercises the
    /// watchdog-recovery path and long blocking chains; the loops must
    /// still agree bit for bit.
    #[test]
    fn saturated_network_matches_oracle(
        rate in 500.0..2_000.0f64,
        bandwidth in 100.0..300.0f64,
        seed in 0u64..30,
    ) {
        let t = Topology::mesh(2, 2, bandwidth);
        let flows = vec![
            FlowSpec::single_path(
                NodeId::new(0), NodeId::new(3), noc_units::mbps(rate),
                xy_path(&t, NodeId::new(0), NodeId::new(3)),
            ),
            FlowSpec::single_path(
                NodeId::new(1), NodeId::new(2), noc_units::mbps(rate),
                xy_path(&t, NodeId::new(1), NodeId::new(2)),
            ),
        ];
        let config = SimConfig {
            warmup_cycles: 200,
            measure_cycles: 4_000,
            drain_cycles: 1_000,
            seed,
            ..SimConfig::default()
        };
        let oracle = run_kind(&t, &flows, &config, LoopKind::FullScan);
        let event = run_kind(&t, &flows, &config, LoopKind::EventQueue);
        prop_assert!(oracle.saturated(), "workload chosen to saturate");
        prop_assert_eq!(event, oracle);
    }
}
