//! Latency and throughput statistics.

/// Streaming latency statistics (count, mean, min/max) plus a coarse
/// histogram for percentile estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    count: u64,
    /// Exact integer sum of all samples. Kept in `u128` so the running
    /// total never rounds (an f64 accumulator silently loses low bits
    /// once the sum crosses 2^53); converted to `f64` exactly once, in
    /// [`LatencyStats::mean`].
    sum: u128,
    min: u64,
    max: u64,
    /// Histogram buckets: [0,2), [2,4), [4,8), … powers of two.
    buckets: Vec<u64>,
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: vec![0; 40] }
    }

    /// Records one latency sample (cycles).
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += u128::from(latency);
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
        let bucket = (64 - latency.max(1).leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[bucket] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in cycles (0 when empty).
    // lint: allow(f64-api) — raw sample-space mean; the report seam wraps
    // it in `Latency` (`SimReport::avg_latency_cycles`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Upper edge of the histogram bucket containing the given quantile
    /// (`0.0 ≤ q ≤ 1.0`) — a coarse percentile estimate.
    ///
    /// A sample `v` lands in the bucket with upper edge
    /// `2^(64 - leading_zeros(max(v, 1)))`: bucket edges 2, 4, 8, … so
    /// values 0–1 report 2, values 2–3 report 4, and so on. `q` at or
    /// near 0 reports the bucket of the smallest sample (the target rank
    /// is floored at 1 sample — otherwise the never-populated bucket 0
    /// would satisfy `seen ≥ 0` and misreport 1).
    // lint: allow(f64-api) — `q` is a dimensionless quantile in [0, 1].
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(1u64 << i);
            }
        }
        Some(self.max)
    }

    /// Merges another statistics object into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = LatencyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn mean_min_max() {
        let mut s = LatencyStats::new();
        for v in [10, 20, 30] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 20.0);
        assert_eq!(s.min(), Some(10));
        assert_eq!(s.max(), Some(30));
    }

    #[test]
    fn quantile_bound_covers_samples() {
        let mut s = LatencyStats::new();
        for v in 1..=100u64 {
            s.record(v);
        }
        let p50 = s.quantile_upper_bound(0.5).unwrap();
        assert!((50..=64).contains(&p50), "p50 bound {p50}");
        let p100 = s.quantile_upper_bound(1.0).unwrap();
        assert!(p100 >= 100);
    }

    #[test]
    fn quantile_at_zero_reports_smallest_sample_bucket() {
        // Regression: target rank used to round to 0 for q ≈ 0, so the
        // empty bucket 0 "contained" the quantile and Some(1) came back
        // even when every sample was in the hundreds.
        let mut s = LatencyStats::new();
        for v in [300u64, 400, 500] {
            s.record(v);
        }
        // 300..=500 all land in the [256, 512) bucket: upper edge 512.
        for q in [0.0, 1e-9, 0.1, 0.5, 1.0] {
            assert_eq!(s.quantile_upper_bound(q), Some(512), "q={q}");
        }
    }

    #[test]
    fn bucket_edges_are_powers_of_two() {
        // Pin the documented edges: v=0,1 → 2; v=2,3 → 4; v=4..8 → 8; …
        for (value, edge) in [(0u64, 2u64), (1, 2), (2, 4), (3, 4), (4, 8), (7, 8), (8, 16)] {
            let mut s = LatencyStats::new();
            s.record(value);
            assert_eq!(s.quantile_upper_bound(0.5), Some(edge), "value={value}");
            assert_eq!(s.quantile_upper_bound(0.0), Some(edge), "value={value}");
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::new();
        a.record(5);
        let mut b = LatencyStats::new();
        b.record(15);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 10.0);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(15));
    }

    #[test]
    fn large_window_mean_does_not_round() {
        // Regression for the old f64 accumulator: past 2^53 the running
        // sum dropped low bits, so a long window of identical samples
        // drifted off the exact mean. The u128 sum stays exact.
        let mut s = LatencyStats::new();
        let sample = (1u64 << 53) + 1;
        for _ in 0..4 {
            s.record(sample);
        }
        // f64 accumulation would compute ((2^53+1) + (2^53+1)) = 2^54+2 ✓,
        // then + (2^53+1) → rounds; the exact integer path cannot.
        assert_eq!(s.mean(), ((4 * u128::from(sample)) as f64) / 4.0);
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), Some(sample));
        assert_eq!(s.max(), Some(sample));
    }

    #[test]
    fn zero_latency_sample_is_handled() {
        let mut s = LatencyStats::new();
        s.record(0);
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.mean(), 0.0);
    }
}
