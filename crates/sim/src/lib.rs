//! Flit-level wormhole NoC simulator — the substitute for the paper's
//! cycle-accurate SystemC/×pipes validation flow (Section 7.2).
//!
//! The paper builds the NoC for its DSP filter design out of ×pipes macro
//! components and simulates it cycle-accurately to obtain Figure 5(c)
//! (average packet latency vs. link bandwidth, single-path vs. split
//! routing). This crate reproduces that measurement with a discrete,
//! cycle-driven model of the same mechanisms:
//!
//! * **wormhole flow control** — a packet's head flit allocates each
//!   output channel; body flits stream behind it; the channel frees only
//!   when the tail passes. Blocked heads block the whole chain upstream
//!   (the "domino effect" the paper cites for the non-linear latency
//!   increase).
//! * **input-buffered routers** with credit-based backpressure and
//!   round-robin output arbitration, plus a configurable pipeline delay
//!   per hop (Table 3: switch delay 7 cycles).
//! * **link bandwidth** modeled by flit serialization: a link running at
//!   `B` MB/s with `f`-byte flits forwards at most one flit every `f/B`
//!   nanoseconds (token-bucket accounting at 1 GHz).
//! * **source routing** — packets carry their path, which is how the
//!   mapping algorithms' routing tables (single-path or split) are
//!   injected into the network; split flows distribute packets over their
//!   paths by deficit-weighted round-robin.
//! * **bursty traffic generators** — on/off sources reproducing "as the
//!   traffic is bursty in nature, we have contention even when bandwidth
//!   constraints are satisfied".
//!
//! # Example
//!
//! ```
//! use noc_graph::Topology;
//! use noc_sim::{FlowSpec, SimConfig, Simulator};
//!
//! let mesh = Topology::mesh(2, 2, 1_000.0);
//! let path = vec![mesh.find_link(noc_graph::NodeId::new(0), noc_graph::NodeId::new(1)).unwrap()];
//! let flow = FlowSpec::single_path(
//!     noc_graph::NodeId::new(0),
//!     noc_graph::NodeId::new(1),
//!     noc_units::mbps(400.0),
//!     path,
//! );
//! let mut sim = Simulator::new(&mesh, vec![flow], SimConfig::default());
//! let report = sim.run();
//! assert!(report.delivered_packets > 0);
//! assert!(report.avg_latency_cycles().to_f64() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod event;
mod network;
mod packet;
mod router;
mod stats;
mod traffic;

pub use config::SimConfig;
pub use network::{LoopKind, SimReport, Simulator};
pub use packet::{FlitKind, Packet};
pub use stats::LatencyStats;
pub use traffic::{FlowSpec, WeightedPath};
