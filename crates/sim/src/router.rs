//! Router-side plumbing: flit buffers, ports and wormhole channel state.

use std::collections::VecDeque;

use noc_graph::LinkId;

/// A flit sitting in a buffer. Flits reference their packet by slab index;
/// payload is never materialized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct FlitRef {
    /// Slab index of the owning packet.
    pub packet: usize,
    /// 0-based flit position within the packet.
    pub flit: u32,
    /// Number of links the flit has already traversed (0 = still at the
    /// source NI). `path[hop]` is the next link to take.
    pub hop: u32,
    /// Cycle the flit entered this buffer.
    pub arrived: u64,
}

/// An input port of a router: either the downstream end of a link or one
/// of the local injection queues.
///
/// The network interface is connection-oriented (as in ×pipes): each
/// (flow, path) pair owns a private injection queue, so a packet waiting
/// for a busy path never blocks packets of other flows — or of the same
/// split flow bound for a different path — behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum InputId {
    /// Flits arriving over a physical link.
    Link(LinkId),
    /// Flits injected by the local NI, from the numbered injection queue.
    Inject(usize),
}

/// A FIFO flit buffer with bounded capacity (credit pool). The injection
/// queue uses `capacity = usize::MAX` (the NI's source queue is unbounded;
/// source queueing time is part of measured latency).
#[derive(Debug, Clone, Default)]
pub(crate) struct Buffer {
    fifo: VecDeque<FlitRef>,
    capacity: usize,
}

impl Buffer {
    pub fn new(capacity: usize) -> Self {
        Self { fifo: VecDeque::new(), capacity }
    }

    pub fn has_space(&self) -> bool {
        self.fifo.len() < self.capacity
    }

    pub fn push(&mut self, flit: FlitRef) {
        debug_assert!(self.has_space(), "buffer overflow");
        self.fifo.push_back(flit);
    }

    pub fn front(&self) -> Option<&FlitRef> {
        self.fifo.front()
    }

    pub fn pop(&mut self) -> Option<FlitRef> {
        self.fifo.pop_front()
    }

    /// Number of buffered flits (diagnostics; exercised by unit tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Removes every flit of `packet` (deadlock-recovery drop). Returns the
    /// number of flits removed.
    pub fn purge_packet(&mut self, packet: usize) -> usize {
        let before = self.fifo.len();
        self.fifo.retain(|f| f.packet != packet);
        before - self.fifo.len()
    }

    /// Iterates over buffered flits front-to-back (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &FlitRef> {
        self.fifo.iter()
    }
}

/// Wormhole allocation state of one output channel (a link's upstream end
/// or a node's ejection port): which input owns it and for which packet.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct ChannelState {
    /// Current owner, if a packet holds the channel.
    pub owner: Option<(InputId, usize)>,
    /// Round-robin pointer over the upstream node's input list.
    pub rr_next: usize,
}

impl ChannelState {
    /// True if `input` may send `packet` through this channel right now
    /// (diagnostics; exercised by unit tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn admits(&self, input: InputId, packet: usize) -> bool {
        match self.owner {
            Some((i, p)) => i == input && p == packet,
            None => false,
        }
    }

    pub fn allocate(&mut self, input: InputId, packet: usize) {
        debug_assert!(self.owner.is_none(), "channel already allocated");
        self.owner = Some((input, packet));
    }

    pub fn release(&mut self) {
        self.owner = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(packet: usize, flit: u32) -> FlitRef {
        FlitRef { packet, flit, hop: 0, arrived: 0 }
    }

    #[test]
    fn buffer_is_fifo_with_capacity() {
        let mut b = Buffer::new(2);
        assert!(b.has_space());
        b.push(flit(1, 0));
        b.push(flit(1, 1));
        assert!(!b.has_space());
        assert_eq!(b.len(), 2);
        assert_eq!(b.pop().unwrap().flit, 0);
        assert_eq!(b.front().unwrap().flit, 1);
        assert!(b.has_space());
    }

    #[test]
    fn purge_removes_only_target_packet() {
        let mut b = Buffer::new(8);
        b.push(flit(1, 0));
        b.push(flit(2, 0));
        b.push(flit(1, 1));
        assert_eq!(b.purge_packet(1), 2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.front().unwrap().packet, 2);
    }

    #[test]
    fn channel_allocation_lifecycle() {
        let mut ch = ChannelState::default();
        assert!(!ch.admits(InputId::Inject(0), 5));
        ch.allocate(InputId::Inject(0), 5);
        assert!(ch.admits(InputId::Inject(0), 5));
        assert!(!ch.admits(InputId::Inject(0), 6));
        assert!(!ch.admits(InputId::Inject(1), 5));
        assert!(!ch.admits(InputId::Link(LinkId::new(0)), 5));
        ch.release();
        assert!(!ch.admits(InputId::Inject(0), 5));
    }

    #[test]
    #[should_panic(expected = "channel already allocated")]
    #[cfg(debug_assertions)]
    fn double_allocation_panics_in_debug() {
        let mut ch = ChannelState::default();
        ch.allocate(InputId::Inject(0), 1);
        ch.allocate(InputId::Inject(0), 2);
    }
}
