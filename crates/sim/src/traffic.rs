//! Flow specifications and bursty traffic generation.

use noc_graph::{LinkId, NodeId};
use noc_units::Mbps;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::config::SimConfig;

/// One path of a (possibly split) flow, with the fraction of the flow's
/// packets it should carry.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedPath {
    /// Links to traverse, in order.
    pub links: Vec<LinkId>,
    /// Share of the flow's traffic (fractions of a flow sum to 1).
    // lint: allow(f64-api) — dimensionless share; weights of a flow sum
    // to 1.
    pub weight: f64,
}

/// A traffic flow: the simulator-facing form of one commodity plus its
/// routing-table entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Injecting node.
    pub source: NodeId,
    /// Consuming node.
    pub dest: NodeId,
    /// Average offered load.
    pub rate_mbps: Mbps,
    /// Alternative paths with their traffic shares.
    pub paths: Vec<WeightedPath>,
}

impl FlowSpec {
    /// Builds a flow with a single path carrying all traffic.
    pub fn single_path(source: NodeId, dest: NodeId, rate_mbps: Mbps, links: Vec<LinkId>) -> Self {
        Self { source, dest, rate_mbps, paths: vec![WeightedPath { links, weight: 1.0 }] }
    }

    /// Builds a flow splitting traffic over several weighted paths.
    /// Weights are normalized to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty or any weight is non-finite or ≤ 0.
    /// Each individual weight must be a positive share: a negative or NaN
    /// weight would corrupt the deficit-round-robin credits of the packet
    /// scheduler even when the weight *sum* looks healthy.
    // lint: allow(f64-api) — path weights are dimensionless shares.
    pub fn split(
        source: NodeId,
        dest: NodeId,
        rate_mbps: Mbps,
        paths: Vec<(Vec<LinkId>, f64)>,
    ) -> Self {
        assert!(!paths.is_empty(), "a flow needs at least one path");
        for (i, (_, w)) in paths.iter().enumerate() {
            assert!(
                w.is_finite() && *w > 0.0,
                "path weight {i} must be finite and positive, got {w}"
            );
        }
        let total: f64 = paths.iter().map(|(_, w)| w).sum();
        let paths =
            paths.into_iter().map(|(links, w)| WeightedPath { links, weight: w / total }).collect();
        Self { source, dest, rate_mbps, paths }
    }
}

/// Bursty on/off packet generator for one flow.
///
/// The source alternates between ON bursts (back-to-back packets, count
/// geometrically distributed with mean `burst_packets`) and OFF gaps sized
/// so the long-run average rate equals `rate_mbps`. Within a burst,
/// packets arrive [`SimConfig::burst_intensity`] times faster than the
/// long-run mean (mimicking the paper's "bursty in nature" transaction
/// traffic).
#[derive(Debug, Clone)]
pub struct BurstSource {
    /// Mean cycles between packet starts at the average rate.
    mean_gap: f64,
    /// Cycles between packets inside a burst.
    burst_gap: f64,
    /// Remaining packets in the current burst.
    remaining_in_burst: u32,
    /// Length of the current burst (for the OFF-gap computation).
    burst_len: u32,
    /// Next cycle at which a packet is generated.
    next_at: f64,
    mean_burst: u32,
    /// Deficit-weighted round-robin state per path.
    path_credit: Vec<f64>,
}

impl BurstSource {
    /// Creates the generator for one flow with the given config; `rng`
    /// seeds the burst process.
    pub fn new(spec: &FlowSpec, config: &SimConfig, rng: &mut ChaCha8Rng) -> Self {
        let bytes_per_packet = config.packet_bytes as f64;
        let bytes_per_cycle = SimConfig::bytes_per_cycle(spec.rate_mbps);
        // Zero-rate flows never fire.
        let mean_gap =
            if bytes_per_cycle > 0.0 { bytes_per_packet / bytes_per_cycle } else { f64::INFINITY };
        let burst_gap = mean_gap / config.burst_intensity;
        let start = if mean_gap.is_finite() {
            rng.gen_range(0.0..mean_gap.max(1.0))
        } else {
            f64::INFINITY
        };
        Self {
            mean_gap,
            burst_gap,
            remaining_in_burst: 0,
            burst_len: 0,
            next_at: start,
            mean_burst: config.burst_packets,
            path_credit: vec![0.0; spec.paths.len()],
        }
    }

    /// Returns the path index for the next packet and the updated
    /// round-robin state: deficit-weighted so long-run shares converge to
    /// the configured weights regardless of burst phase.
    fn pick_path(&mut self, spec: &FlowSpec) -> usize {
        for (credit, path) in self.path_credit.iter_mut().zip(&spec.paths) {
            *credit += path.weight;
        }
        let (best, _) = self
            .path_credit
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("credits are finite"))
            .expect("at least one path");
        self.path_credit[best] -= 1.0;
        best
    }

    /// If a packet is due at `cycle`, returns the path index to use and
    /// schedules the next packet.
    pub fn poll(&mut self, cycle: u64, spec: &FlowSpec, rng: &mut ChaCha8Rng) -> Option<usize> {
        if (cycle as f64) < self.next_at {
            return None;
        }
        if self.remaining_in_burst == 0 {
            // Start a new burst: geometric length with the configured mean.
            let mut len = 1u32;
            while len < self.mean_burst * 8 && rng.gen::<f64>() > 1.0 / self.mean_burst as f64 {
                len += 1;
            }
            self.remaining_in_burst = len;
            self.burst_len = len;
        }
        self.remaining_in_burst -= 1;
        let gap = if self.remaining_in_burst > 0 {
            self.burst_gap
        } else {
            // OFF period sized so the long-run rate is exact: the n
            // packets of this burst must occupy n·mean_gap in total, and
            // (n-1)·burst_gap of that has already elapsed. A ±20% jitter
            // decorrelates sources without biasing the mean.
            let n = self.burst_len as f64;
            let off = n * self.mean_gap - (n - 1.0) * self.burst_gap;
            off * (0.8 + 0.4 * rng.gen::<f64>())
        };
        self.next_at += gap.max(1.0);
        Some(self.pick_path(spec))
    }

    /// First cycle at which [`BurstSource::poll`] will return a packet
    /// (`None` for silent zero-rate sources): the event-queue loop wakes
    /// the source exactly then instead of polling it every cycle. The
    /// cycle-stepped loops ignore this. `poll` fires at the first integer
    /// cycle `c` with `c ≥ next_at`, hence the ceiling.
    pub fn next_fire_cycle(&self) -> Option<u64> {
        if !self.next_at.is_finite() {
            return None;
        }
        Some(self.next_at.max(0.0).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_units::mbps;
    use rand::SeedableRng;

    fn spec(rate: f64, paths: usize) -> FlowSpec {
        let p = (0..paths).map(|_| (vec![], 1.0)).collect();
        FlowSpec::split(NodeId::new(0), NodeId::new(1), mbps(rate), p)
    }

    #[test]
    fn single_path_constructor_normalizes() {
        let f = FlowSpec::single_path(NodeId::new(0), NodeId::new(1), mbps(100.0), vec![]);
        assert_eq!(f.paths.len(), 1);
        assert_eq!(f.paths[0].weight, 1.0);
    }

    #[test]
    fn split_constructor_normalizes_weights() {
        let f = FlowSpec::split(
            NodeId::new(0),
            NodeId::new(1),
            mbps(100.0),
            vec![(vec![], 2.0), (vec![], 6.0)],
        );
        assert!((f.paths[0].weight - 0.25).abs() < 1e-12);
        assert!((f.paths[1].weight - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn empty_paths_panics() {
        let _ = FlowSpec::split(NodeId::new(0), NodeId::new(1), mbps(1.0), vec![]);
    }

    #[test]
    #[should_panic(expected = "path weight 1 must be finite and positive, got -1")]
    fn negative_weight_panics_even_with_positive_sum() {
        // Sum is 2.0 > 0, but the negative share would drive path 1's
        // round-robin credit ever downward — rejected outright.
        let _ = FlowSpec::split(
            NodeId::new(0),
            NodeId::new(1),
            mbps(100.0),
            vec![(vec![], 3.0), (vec![], -1.0)],
        );
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn zero_weight_panics() {
        let _ = FlowSpec::split(
            NodeId::new(0),
            NodeId::new(1),
            mbps(100.0),
            vec![(vec![], 0.0), (vec![], 1.0)],
        );
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn nan_weight_panics() {
        let _ =
            FlowSpec::split(NodeId::new(0), NodeId::new(1), mbps(100.0), vec![(vec![], f64::NAN)]);
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn infinite_weight_panics() {
        let _ = FlowSpec::split(
            NodeId::new(0),
            NodeId::new(1),
            mbps(100.0),
            vec![(vec![], f64::INFINITY)],
        );
    }

    #[test]
    fn long_run_rate_is_close_to_nominal() {
        let config = SimConfig::default();
        let spec = spec(400.0, 1); // 0.4 B/cycle => 160 cycles/packet mean
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut src = BurstSource::new(&spec, &config, &mut rng);
        let horizon = 2_000_000u64;
        let mut count = 0usize;
        for cycle in 0..horizon {
            if src.poll(cycle, &spec, &mut rng).is_some() {
                count += 1;
            }
        }
        let measured_rate = count as f64 * config.packet_bytes as f64 / horizon as f64 * 1000.0; // MB/s
        let err = (measured_rate - 400.0).abs() / 400.0;
        assert!(err < 0.15, "measured {measured_rate} MB/s, expected ~400");
    }

    #[test]
    fn packets_come_in_bursts() {
        let config = SimConfig::default();
        let spec = spec(200.0, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut src = BurstSource::new(&spec, &config, &mut rng);
        let mut gaps = Vec::new();
        let mut last: Option<u64> = None;
        for cycle in 0..500_000u64 {
            if src.poll(cycle, &spec, &mut rng).is_some() {
                if let Some(prev) = last {
                    gaps.push(cycle - prev);
                }
                last = Some(cycle);
            }
        }
        assert!(gaps.len() > 100);
        let mean_gap = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        let short = gaps.iter().filter(|&&g| (g as f64) < mean_gap / 2.0).count();
        // Bursty: a solid share of gaps are much shorter than the mean.
        assert!(short as f64 > gaps.len() as f64 * 0.3, "only {short}/{} short gaps", gaps.len());
    }

    #[test]
    fn weighted_round_robin_converges_to_weights() {
        let config = SimConfig::default();
        let spec = FlowSpec::split(
            NodeId::new(0),
            NodeId::new(1),
            mbps(300.0),
            vec![(vec![], 1.0), (vec![], 3.0)],
        );
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut src = BurstSource::new(&spec, &config, &mut rng);
        let mut counts = [0usize; 2];
        for cycle in 0..3_000_000u64 {
            if let Some(path) = src.poll(cycle, &spec, &mut rng) {
                counts[path] += 1;
            }
        }
        let total = (counts[0] + counts[1]) as f64;
        assert!(total > 1000.0);
        let share = counts[1] as f64 / total;
        assert!((share - 0.75).abs() < 0.02, "share {share}, expected 0.75");
    }

    #[test]
    fn zero_rate_flow_is_silent() {
        let config = SimConfig::default();
        let spec = spec(0.0, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut src = BurstSource::new(&spec, &config, &mut rng);
        assert_eq!(src.next_fire_cycle(), None);
        for cycle in 0..10_000u64 {
            assert!(src.poll(cycle, &spec, &mut rng).is_none());
        }
    }

    #[test]
    fn next_fire_cycle_predicts_poll_exactly() {
        // The event-queue loop relies on this equivalence: polling every
        // cycle fires at exactly the predicted cycle, never earlier or
        // later, and non-due polls draw no randomness.
        let config = SimConfig::default();
        let spec = spec(300.0, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut src = BurstSource::new(&spec, &config, &mut rng);
        let mut fires = 0u64;
        for cycle in 0..200_000u64 {
            let predicted = src.next_fire_cycle().expect("finite-rate source");
            let fired = src.poll(cycle, &spec, &mut rng).is_some();
            assert_eq!(fired, cycle == predicted, "cycle {cycle}, predicted {predicted}");
            if fired {
                assert!(src.next_fire_cycle().expect("still finite") > cycle);
                fires += 1;
            }
        }
        assert!(fires > 100, "only {fires} packets fired");
    }
}
