//! The tick queue behind [`LoopKind::EventQueue`](crate::LoopKind): a
//! priority queue of per-component next-active cycles.
//!
//! The event-driven loop executes only the cycles at which some component
//! (a traffic source, a router's ejection port, a link, or the deadlock
//! watchdog) can change state; every executed cycle then runs the exact
//! active-set scan of the cycle-stepped loop, so the two produce
//! bit-identical reports (pinned by the `event_queue_identity` suite).
//! The queue's job is purely to prove which cycles *cannot* matter and
//! skip them.
//!
//! Scheduling is conservative: waking a component at a cycle where it
//! turns out nothing moves is a harmless no-op (the scan is identical to
//! what the cycle-stepped loop would have done), but *failing* to wake at
//! a cycle where the oracle would move a flit breaks bit-identity. The
//! simulator therefore schedules every time-triggered enabling it can see
//! under frozen state — source fire cycles, flit-eligibility expiries,
//! serialization-token threshold crossings, the watchdog deadline — and
//! wakes every *state*-triggered enabling at the movement that causes it:
//! a pop frees buffer space and wakes the link it back-pressured, exposes
//! a new front and wakes that front's desired output, a tail release
//! wakes the channel's remaining candidates, a packet entering an empty
//! injection queue wakes its first link. Only a watchdog purge, which
//! rewrites state wholesale, schedules a blanket next-cycle rescan.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use noc_probe::Counter;

/// One schedulable simulator component. The ordering only disambiguates
/// heap entries at equal ticks; every executed cycle rescans all active
/// components, so pop order within a cycle is immaterial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Component {
    /// A traffic source's next injection cycle.
    Source(usize),
    /// A router's ejection port (flit-eligibility expiry at a node).
    Node(usize),
    /// A link (eligibility expiry upstream or a token-threshold crossing).
    Link(usize),
    /// The deadlock watchdog's next possible trigger.
    Watchdog,
}

/// Two-level priority queue of `(cycle, component)` wake-ups with
/// per-component dedup: at most one *earliest* pending tick is tracked
/// per component, and requests at or after an already-pending tick are
/// dropped — safe because executing the earlier tick rescans the
/// component and re-derives any later wake-up still needed.
///
/// Almost every wake-up lands within a few cycles of the present (a pop
/// chaining to the next buffered flit, a serialization-token crossing,
/// a pipeline-delay expiry), so near ticks live in a 64-bit mask — one
/// OR to schedule, one trailing-zeros to pop — and only far ticks
/// (source inter-arrivals, the watchdog deadline, conservative replay
/// bounds) pay for a binary-heap entry. The mask holds no component
/// identity: an executed cycle rescans every active component anyway,
/// and the per-component slots alone carry the dedup state.
#[derive(Debug)]
pub(crate) struct TickQueue {
    /// Bit `k` set = some component wants tick `next_allowed + k`
    /// (`k < 64`).
    near: u64,
    /// Wake-ups at `next_allowed + 64` or later.
    heap: BinaryHeap<Reverse<(u64, Component)>>,
    /// Earliest pending tick per node / link / source (`u64::MAX` = none).
    node_at: Vec<u64>,
    link_at: Vec<u64>,
    source_at: Vec<u64>,
    watchdog_at: u64,
    /// First cycle not yet executed: ticks below this are stale, and
    /// scheduling below it would mean waking a component in the past.
    next_allowed: u64,
    /// Telemetry: accepted schedules landing in the near mask / the heap
    /// (no-op handles unless the simulator attached a live probe).
    near_hits: Counter,
    heap_hits: Counter,
}

impl TickQueue {
    pub fn new(nodes: usize, links: usize, sources: usize) -> Self {
        Self {
            near: 0,
            heap: BinaryHeap::new(),
            node_at: vec![u64::MAX; nodes],
            link_at: vec![u64::MAX; links],
            source_at: vec![u64::MAX; sources],
            watchdog_at: u64::MAX,
            next_allowed: 0,
            near_hits: Counter::default(),
            heap_hits: Counter::default(),
        }
    }

    /// Attaches the near-mask / heap insertion counters.
    pub fn set_counters(&mut self, near_hits: Counter, heap_hits: Counter) {
        self.near_hits = near_hits;
        self.heap_hits = heap_hits;
    }

    fn slot_mut(&mut self, component: Component) -> &mut u64 {
        match component {
            Component::Source(i) => &mut self.source_at[i],
            Component::Node(i) => &mut self.node_at[i],
            Component::Link(i) => &mut self.link_at[i],
            Component::Watchdog => &mut self.watchdog_at,
        }
    }

    /// Whether a wake-up for `component` is still pending (scheduled and
    /// not yet executed). While one is, re-deriving the component's
    /// wake-up is redundant: state changes install earlier wake-ups at
    /// their own mutation sites, and a fired wake-up clears the slot so
    /// the still-blocked component re-derives from fresh state.
    pub fn has_pending(&self, component: Component) -> bool {
        let slot = match component {
            Component::Source(i) => self.source_at[i],
            Component::Node(i) => self.node_at[i],
            Component::Link(i) => self.link_at[i],
            Component::Watchdog => self.watchdog_at,
        };
        slot != u64::MAX && slot >= self.next_allowed
    }

    /// Requests a wake-up for `component` at `tick`. Dropped when an
    /// earlier (or equal) wake-up for it is already pending.
    pub fn schedule(&mut self, tick: u64, component: Component) {
        debug_assert!(
            tick >= self.next_allowed,
            "{component:?} scheduled at {tick}, in the past of {}",
            self.next_allowed
        );
        let next_allowed = self.next_allowed;
        let slot = self.slot_mut(component);
        // Drop only against a *genuinely pending* earlier-or-equal tick: a
        // slot at or beyond a tick that has already executed is stale (its
        // queue entry was superseded by the executed cycle, not by a
        // wake-up still to come) and must not mask the new request.
        if *slot >= next_allowed && *slot <= tick {
            return;
        }
        *slot = tick;
        let delta = tick - next_allowed;
        if delta < 64 {
            self.near |= 1 << delta;
            self.near_hits.inc();
        } else {
            self.heap.push(Reverse((tick, component)));
            self.heap_hits.inc();
        }
    }

    /// Pops the earliest pending tick before `horizon`, discarding stale
    /// heap entries (superseded duplicates of already-executed cycles).
    /// Returns `None` when nothing schedulable remains before the horizon.
    pub fn pop_due(&mut self, horizon: u64) -> Option<u64> {
        loop {
            let near_tick =
                (self.near != 0).then(|| self.next_allowed + u64::from(self.near.trailing_zeros()));
            // A heap entry can be *earlier* than the mask's first bit: it
            // was far-future when pushed and the present has caught up.
            if let Some(&Reverse((h, _))) = self.heap.peek() {
                if near_tick.is_none_or(|n| h < n) {
                    let Some(Reverse((tick, component))) = self.heap.pop() else {
                        unreachable!("peeked entry vanished")
                    };
                    let slot = self.slot_mut(component);
                    if *slot == tick {
                        *slot = u64::MAX;
                    }
                    if tick < self.next_allowed {
                        continue; // stale: that cycle already executed
                    }
                    if tick >= horizon {
                        return None; // everything else pending is later
                    }
                    self.advance_to(tick);
                    return Some(tick);
                }
            }
            let tick = near_tick?;
            if tick >= horizon {
                return None;
            }
            self.advance_to(tick);
            return Some(tick);
        }
    }

    /// Marks `tick` as the cycle being executed: shifts the near mask so
    /// bit 0 lands on `tick + 1` and bumps `next_allowed`, making every
    /// slot at or before `tick` stale.
    fn advance_to(&mut self, tick: u64) {
        let shift = tick + 1 - self.next_allowed;
        self.near = if shift >= 64 { 0 } else { self.near >> shift };
        self.next_allowed = tick + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_tick_order_and_dedups_per_component() {
        let mut q = TickQueue::new(2, 2, 1);
        q.schedule(7, Component::Node(0));
        q.schedule(3, Component::Link(1));
        q.schedule(5, Component::Node(0)); // earlier than 7: replaces it
        q.schedule(9, Component::Node(0)); // later than 5: dropped
        q.schedule(3, Component::Watchdog);
        assert_eq!(q.pop_due(100), Some(3));
        assert_eq!(q.pop_due(100), Some(5));
        // The superseded tick-7 heap entry survives as a harmless no-op
        // wake-up (an executed cycle where nothing moves).
        assert_eq!(q.pop_due(100), Some(7));
        assert_eq!(q.pop_due(100), None);
    }

    #[test]
    fn equal_ticks_coalesce_into_one_executed_cycle() {
        let mut q = TickQueue::new(1, 1, 2);
        q.schedule(4, Component::Source(0));
        q.schedule(4, Component::Source(1));
        q.schedule(4, Component::Watchdog);
        assert_eq!(q.pop_due(100), Some(4));
        // The remaining tick-4 entries are below `next_allowed` now.
        assert_eq!(q.pop_due(100), None);
    }

    #[test]
    fn stale_slot_does_not_mask_new_schedules() {
        // Regression: two components pending at the same tick. Executing
        // that tick pops only one entry, leaving the other component's
        // slot pointing at the now-executed cycle; a follow-up schedule
        // for it must not be deduped against that stale value.
        let mut q = TickQueue::new(0, 1, 0);
        q.schedule(8, Component::Link(0));
        q.schedule(8, Component::Watchdog);
        assert_eq!(q.pop_due(100), Some(8));
        q.schedule(9, Component::Watchdog);
        assert_eq!(q.pop_due(100), Some(9));
        assert_eq!(q.pop_due(100), None);
    }

    #[test]
    fn far_heap_entries_interleave_with_the_near_mask() {
        // Ticks beyond the 64-bit near window go to the heap; once the
        // present catches up they must still pop in global tick order.
        let mut q = TickQueue::new(1, 1, 0);
        q.schedule(100, Component::Watchdog); // far: heap
        q.schedule(3, Component::Node(0)); // near: mask
        assert_eq!(q.pop_due(1000), Some(3));
        q.schedule(70, Component::Link(0)); // near of tick 4: mask
        assert_eq!(q.pop_due(1000), Some(70));
        assert_eq!(q.pop_due(1000), Some(100));
        assert_eq!(q.pop_due(1000), None);
    }

    #[test]
    fn pending_wakeups_are_visible_until_executed() {
        // `has_pending` drives the blocked-link gate in the simulator: a
        // pending wake-up suppresses re-deriving the retry, and executing
        // the wake-up's cycle (or any later one) makes it stale again.
        let mut q = TickQueue::new(0, 1, 0);
        assert!(!q.has_pending(Component::Link(0)));
        q.schedule(5, Component::Link(0));
        assert!(q.has_pending(Component::Link(0)));
        assert_eq!(q.pop_due(100), Some(5));
        assert!(!q.has_pending(Component::Link(0)));
        // A next-cycle wake-up (the commonest kind) is pending too, and
        // supersedes a later pending tick for the same component.
        q.schedule(9, Component::Link(0));
        q.schedule(6, Component::Link(0));
        assert!(q.has_pending(Component::Link(0)));
        assert_eq!(q.pop_due(100), Some(6));
        assert!(!q.has_pending(Component::Link(0)));
        // The superseded tick-9 mask bit still fires a harmless rescan.
        assert_eq!(q.pop_due(100), Some(9));
        assert_eq!(q.pop_due(100), None);
    }

    #[test]
    fn horizon_cuts_off_the_tail() {
        let mut q = TickQueue::new(1, 0, 0);
        q.schedule(2, Component::Watchdog);
        q.schedule(50, Component::Node(0));
        assert_eq!(q.pop_due(10), Some(2));
        assert_eq!(q.pop_due(10), None);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = TickQueue::new(1, 0, 0);
        q.schedule(5, Component::Node(0));
        assert_eq!(q.pop_due(100), Some(5));
        q.schedule(4, Component::Watchdog);
    }
}
