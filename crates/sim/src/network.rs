//! The network simulator: one flit-level model, three main loops.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use noc_graph::{LinkId, NodeId, Topology};
use noc_probe::{Counter, Probe};

use crate::config::SimConfig;
use crate::event::{Component, TickQueue};
use crate::packet::Packet;
use crate::router::{Buffer, ChannelState, FlitRef, InputId};
use crate::stats::LatencyStats;
use crate::traffic::{BurstSource, FlowSpec};
use noc_units::{CycleFrac, Latency, Mbps};

/// Cycles without any flit movement (while traffic is in flight) after
/// which the oldest in-network packet is dropped to break a deadlock.
const STALL_THRESHOLD: u64 = 5_000;

/// Run-relative cycles a [`LoopKind::Hybrid`] run must cover before its
/// executed-cycle fraction is trusted as a density signal — short runs
/// and start-up transients should not trigger the fall-back.
const HYBRID_MIN_WINDOW: u64 = 4_096;

/// Executed-cycle percentage above which [`LoopKind::Hybrid`] abandons
/// the tick queue: when most cycles execute anyway, queue maintenance
/// costs more than the handful of skips it buys.
const HYBRID_DENSITY_PCT: u64 = 55;

/// Iteration bound of the frozen-state serialization-token replay that
/// predicts a blocked link's wake-up cycle. Crossing the one-flit
/// threshold takes `⌈flit_bytes / rate⌉` accrual cycles (~40 for the
/// slowest realistic links); if a degenerate rate has not crossed within
/// the bound, the link is conservatively woken at the bound to re-predict
/// from advanced state — progress is guaranteed either way.
const TOKEN_REPLAY_BOUND: u64 = 10_000;

/// `link_token_ready` cache sentinel: no valid prediction, recompute.
const TOKEN_READY_UNKNOWN: u64 = u64::MAX;

/// `link_token_ready` cache sentinel: the balance can never cross the
/// threshold ([`Simulator::token_ready_cycle`] returned `None`).
const TOKEN_READY_NEVER: u64 = u64::MAX - 1;

/// Which main-loop implementation [`Simulator::run`] uses. All variants
/// produce bit-identical [`SimReport`]s (pinned by the loop-agreement
/// unit tests and the `event_queue_identity` differential suite); they
/// differ only in how much idle work they skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopKind {
    /// Visit every router and link every cycle (the original loop) —
    /// kept as the reference implementation and benchmark baseline.
    FullScan,
    /// Cycle-stepped, but skip routers with no buffered flits and links
    /// whose upstream router is empty, replaying the skipped cycles'
    /// serialization-token accrual lazily when a link next becomes
    /// active. Retained as the cycle-stepped oracle the event-queue loop
    /// is differentially tested against.
    ActiveSet,
    /// Event-driven: a tick queue (`crate::event`, private) of
    /// per-component (source, router, link, watchdog) next-active
    /// cycles skips idle
    /// *time* rather than merely idle routers within a cycle. Executed
    /// cycles run the exact [`LoopKind::ActiveSet`] scan, so reports stay
    /// bit-identical while mostly-idle stretches — low-load sweeps, long
    /// drain windows — collapse to their handful of active cycles.
    #[default]
    EventQueue,
    /// Density-adaptive: starts event-driven and permanently falls back
    /// to cycle-stepping once the run's executed-cycle fraction proves
    /// the load dense (most cycles execute anyway, so queue maintenance
    /// is pure overhead — the ~9% event-queue deficit on saturated
    /// Fig. 5(c)-class loads). The switch happens at an executed-tick
    /// boundary, where both regimes agree on the whole state, so reports
    /// stay bit-identical to the other loop kinds.
    Hybrid,
}

/// Measurement report returned by [`Simulator::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total simulated cycles (warm-up + measurement + drain).
    pub cycles: u64,
    /// Packets generated over the whole run.
    pub generated_packets: u64,
    /// Packets fully delivered (tail ejected) over the whole run.
    pub delivered_packets: u64,
    /// Packets dropped by deadlock recovery (should be 0 in healthy runs).
    pub dropped_packets: u64,
    /// Packets generated in the measurement window but not delivered by
    /// the end of the drain period (a symptom of saturation).
    pub unfinished_measured_packets: u64,
    /// Latency statistics over packets generated in the measurement
    /// window (generation → tail ejection, source queueing included).
    pub latency: LatencyStats,
    /// Network-only latency (head flit entering the network → tail
    /// ejection) over the same packets — the metric hardware NoC
    /// measurements usually report.
    pub network_latency: LatencyStats,
    /// Per-flow latency statistics (same window, full latency).
    pub per_flow_latency: Vec<LatencyStats>,
    /// Flits that crossed each link during the measurement window.
    pub link_flits: Vec<u64>,
    /// Length of the measurement window in cycles.
    pub measure_cycles: u64,
    /// Flit width used (bytes), for utilization conversions.
    pub flit_bytes: usize,
}

impl SimReport {
    /// Mean packet latency in cycles over the measurement window
    /// (including source queueing).
    pub fn avg_latency_cycles(&self) -> Latency {
        Latency::raw(self.latency.mean())
    }

    /// Mean network-only packet latency in cycles (excluding source
    /// queueing).
    pub fn avg_network_latency_cycles(&self) -> Latency {
        Latency::raw(self.network_latency.mean())
    }

    /// Delivered payload+header bandwidth of `link` during the window, in
    /// MB/s (1 GHz clock). An empty measurement window reports 0 rather
    /// than `0/0 = NaN` — [`SimConfig::validate`] rejects such configs at
    /// [`Simulator::new`], but `SimReport` fields are public and merged
    /// reports may be hand-built.
    pub fn link_throughput_mbps(&self, link: LinkId) -> Mbps {
        if self.measure_cycles == 0 {
            return Mbps::ZERO;
        }
        let bytes = self.link_flits[link.index()] as f64 * self.flit_bytes as f64;
        Mbps::raw(bytes / self.measure_cycles as f64 * 1000.0)
    }

    /// True when the run shows signs of saturation: deadlock drops or a
    /// non-negligible share of measured packets still in flight at the end.
    pub fn saturated(&self) -> bool {
        if self.dropped_packets > 0 {
            return true;
        }
        let measured = self.latency.count() + self.unfinished_measured_packets;
        measured > 0 && self.unfinished_measured_packets as f64 > 0.02 * measured as f64
    }
}

/// Telemetry handles for the simulator (see `crates/probe`): no-ops
/// unless [`Simulator::set_probe`] attached a live probe, and strictly
/// out-of-band either way — nothing in the simulation reads them, so
/// reports stay byte-identical with probes on, off, or compiled out.
///
/// Wake-up counters tally scheduling *requests* by reason, before the
/// tick queue's dedup (the interesting signal is how often each
/// mechanism fires, not how many queue slots survive coalescing).
#[derive(Debug, Clone, Default)]
struct SimCounters {
    cycles_executed: Counter,
    cycles_skipped: Counter,
    wake_source: Counter,
    wake_eligibility: Counter,
    wake_token_ready: Counter,
    wake_backpressure: Counter,
    wake_tail_release: Counter,
    wake_watchdog: Counter,
    sched_near: Counter,
    sched_heap: Counter,
}

impl SimCounters {
    fn new(probe: &Probe) -> Self {
        Self {
            cycles_executed: probe.counter("sim.cycles_executed"),
            cycles_skipped: probe.counter("sim.cycles_skipped"),
            wake_source: probe.counter("sim.wake_source"),
            wake_eligibility: probe.counter("sim.wake_eligibility"),
            wake_token_ready: probe.counter("sim.wake_token_ready"),
            wake_backpressure: probe.counter("sim.wake_backpressure"),
            wake_tail_release: probe.counter("sim.wake_tail_release"),
            wake_watchdog: probe.counter("sim.wake_watchdog"),
            sched_near: probe.counter("sim.sched_near"),
            sched_heap: probe.counter("sim.sched_heap"),
        }
    }
}

/// Flit-level wormhole simulator over a [`Topology`] and a set of
/// [`FlowSpec`]s. See the [crate-level docs](crate) for the model.
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
    loop_kind: LoopKind,
    flows: Vec<FlowSpec>,
    sources: Vec<BurstSource>,
    rng: ChaCha8Rng,

    // Static network structure (copied out of the Topology).
    node_count: usize,
    link_src: Vec<NodeId>,
    link_dst: Vec<NodeId>,
    link_rate: Vec<f64>, // bytes per cycle
    node_inputs: Vec<Vec<InputId>>,
    /// Node whose input the numbered injection queue feeds.
    inject_node: Vec<NodeId>,

    // Dynamic state.
    cycle: u64,
    packets: Vec<Option<Packet>>,
    free_slots: Vec<usize>,
    link_buffers: Vec<Buffer>,
    link_tokens: Vec<f64>,
    /// Next cycle whose serialization-token accrual has *not* yet been
    /// applied to `link_tokens` (lazy replay for skipped idle links).
    link_token_due: Vec<u64>,
    /// Memoized [`Self::token_ready_cycle`] per link: the absolute cycle
    /// the balance next crosses the one-flit threshold, or a sentinel
    /// ([`TOKEN_READY_UNKNOWN`], [`TOKEN_READY_NEVER`]). Accrual is
    /// deterministic, so a prediction stays valid until a send perturbs
    /// the balance; without the cache a token-blocked link would re-run
    /// the fp-exact replay on every executed cycle of its wait.
    link_token_ready: Vec<u64>,
    link_channel: Vec<ChannelState>,
    /// Flits currently buffered at each node's inputs (link buffers at the
    /// link's downstream node plus local injection queues) — the active-set
    /// criterion: a node with zero buffered flits can neither eject nor
    /// feed any of its outgoing links this cycle.
    node_flits: Vec<u32>,
    /// One injection queue per (flow, path) pair, indexed by
    /// `inject_queue_of[flow][path]`.
    inject_queues: Vec<Buffer>,
    inject_queue_of: Vec<Vec<usize>>,
    eject_channel: Vec<ChannelState>,
    last_progress: u64,

    // Accounting.
    /// Cycles the main loop actually ran the scan passes for — equal to
    /// `cycle` under the cycle-stepped loops, typically far smaller under
    /// [`LoopKind::EventQueue`]. Maintained unconditionally (it is one
    /// add per executed cycle) so [`Self::executed_cycle_fraction`] works
    /// without the `probe` feature.
    executed_cycles: u64,
    counters: SimCounters,
    next_packet_id: u64,
    generated: u64,
    delivered: u64,
    dropped: u64,
    latency: LatencyStats,
    network_latency: LatencyStats,
    per_flow_latency: Vec<LatencyStats>,
    link_flits: Vec<u64>,
    measured_outstanding: u64,
}

impl Simulator {
    /// Builds a simulator for `topology` with the given flows.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or any flow path is not a
    /// contiguous source→destination walk in `topology`.
    pub fn new(topology: &Topology, flows: Vec<FlowSpec>, config: SimConfig) -> Self {
        config.validate();
        for (i, flow) in flows.iter().enumerate() {
            for wp in &flow.paths {
                validate_path(topology, flow, &wp.links, i);
            }
        }

        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let sources = flows.iter().map(|f| BurstSource::new(f, &config, &mut rng)).collect();

        let node_count = topology.node_count();
        let link_count = topology.link_count();
        let mut node_inputs: Vec<Vec<InputId>> = vec![Vec::new(); node_count];
        for (id, link) in topology.links() {
            node_inputs[link.dst.index()].push(InputId::Link(id));
        }
        // Connection-oriented NI: one injection queue per (flow, path).
        let mut inject_queues: Vec<Buffer> = Vec::new();
        let mut inject_queue_of: Vec<Vec<usize>> = Vec::with_capacity(flows.len());
        let mut inject_node: Vec<NodeId> = Vec::new();
        for flow in &flows {
            let mut ids = Vec::with_capacity(flow.paths.len());
            for _ in &flow.paths {
                let id = inject_queues.len();
                inject_queues.push(Buffer::new(usize::MAX));
                node_inputs[flow.source.index()].push(InputId::Inject(id));
                inject_node.push(flow.source);
                ids.push(id);
            }
            inject_queue_of.push(ids);
        }

        let per_flow_latency = vec![LatencyStats::new(); flows.len()];
        Self {
            sources,
            rng,
            loop_kind: LoopKind::default(),
            node_count,
            link_src: topology.links().map(|(_, l)| l.src).collect(),
            link_dst: topology.links().map(|(_, l)| l.dst).collect(),
            link_rate: topology
                .links()
                .map(|(_, l)| SimConfig::bytes_per_cycle(l.capacity))
                .collect(),
            node_inputs,
            inject_node,
            cycle: 0,
            packets: Vec::new(),
            free_slots: Vec::new(),
            link_buffers: (0..link_count).map(|_| Buffer::new(config.buffer_flits)).collect(),
            link_tokens: vec![0.0; link_count],
            link_token_due: vec![0; link_count],
            link_token_ready: vec![TOKEN_READY_UNKNOWN; link_count],
            link_channel: vec![ChannelState::default(); link_count],
            node_flits: vec![0; node_count],
            inject_queues,
            inject_queue_of,
            eject_channel: vec![ChannelState::default(); node_count],
            last_progress: 0,
            executed_cycles: 0,
            counters: SimCounters::default(),
            next_packet_id: 0,
            generated: 0,
            delivered: 0,
            dropped: 0,
            latency: LatencyStats::new(),
            network_latency: LatencyStats::new(),
            per_flow_latency,
            link_flits: vec![0; link_count],
            measured_outstanding: 0,
            flows,
            config,
        }
    }

    /// Selects the main-loop implementation (default
    /// [`LoopKind::EventQueue`]). All loops produce bit-identical reports;
    /// [`LoopKind::FullScan`] exists as the reference baseline and
    /// [`LoopKind::ActiveSet`] as the cycle-stepped oracle the identity
    /// suites diff the event-queue loop against.
    pub fn set_loop_kind(&mut self, kind: LoopKind) {
        self.loop_kind = kind;
    }

    /// Attaches a telemetry probe (see `crates/probe`). The simulator
    /// only ever *writes* to it, so attaching one cannot change any
    /// report — pinned by the probe-identity differential suite.
    pub fn set_probe(&mut self, probe: &Probe) {
        self.counters = SimCounters::new(probe);
    }

    /// Cycles whose scan passes actually ran (all of them under the
    /// cycle-stepped loops; only provably-relevant ones under
    /// [`LoopKind::EventQueue`]).
    pub fn executed_cycles(&self) -> u64 {
        self.executed_cycles
    }

    /// Fraction of simulated cycles actually executed so far — the
    /// workload-density signal [`LoopKind::Hybrid`] switches on: near
    /// 1.0 the event queue is pure overhead, near 0.0 it is the whole
    /// win. Returns zero before any cycle has been simulated.
    pub fn executed_cycle_fraction(&self) -> CycleFrac {
        if self.cycle == 0 {
            return CycleFrac::ZERO;
        }
        CycleFrac::raw(self.executed_cycles as f64 / self.cycle as f64)
    }

    /// Runs warm-up, measurement and drain, returning the report.
    pub fn run(&mut self) -> SimReport {
        let total =
            self.config.warmup_cycles + self.config.measure_cycles + self.config.drain_cycles;
        let generation_end = self.config.warmup_cycles + self.config.measure_cycles;
        let cycle_before = self.cycle;
        let executed_before = self.executed_cycles;
        if matches!(self.loop_kind, LoopKind::EventQueue | LoopKind::Hybrid) {
            self.run_event_queue(total, generation_end);
        } else {
            while self.cycle < total {
                self.step(self.cycle < generation_end);
            }
        }
        let executed = self.executed_cycles - executed_before;
        let window = self.cycle - cycle_before;
        self.counters.cycles_executed.add(executed);
        self.counters.cycles_skipped.add(window - executed);
        SimReport {
            cycles: self.cycle,
            generated_packets: self.generated,
            delivered_packets: self.delivered,
            dropped_packets: self.dropped,
            unfinished_measured_packets: self.measured_outstanding,
            latency: self.latency.clone(),
            network_latency: self.network_latency.clone(),
            per_flow_latency: self.per_flow_latency.clone(),
            link_flits: self.link_flits.clone(),
            measure_cycles: self.config.measure_cycles,
            flit_bytes: self.config.flit_bytes,
        }
    }

    /// Advances the cycle-stepped simulation by one cycle. `generate`
    /// gates the traffic sources (off during the drain window).
    fn step(&mut self, generate: bool) {
        if generate {
            self.generate_traffic(None);
        }
        self.eject(None);
        self.traverse_links(None);
        self.watchdog();
        self.cycle += 1;
        self.executed_cycles += 1;
    }

    /// The event-driven main loop: executes only the cycles the tick
    /// queue proves *could* matter, running the exact active-set scan at
    /// each. Between executed cycles the state is frozen — no source is
    /// due, no flit's pipeline delay expires into an enabled move, no
    /// serialization-token threshold is crossed and the watchdog deadline
    /// is not reached — so skipping them is observationally identical to
    /// stepping through them. The scan passes collect the time-triggered
    /// wake-ups; every *state* change that can enable a move elsewhere
    /// (a pop freeing buffer space, a buffer gaining a new front, a tail
    /// releasing its channel, a packet entering an empty injection queue)
    /// schedules a targeted wake-up at its own mutation site. Only a
    /// watchdog purge — which rewrites fronts, channels and occupancy all
    /// over the network at once — falls back to rescanning the next cycle
    /// wholesale.
    fn run_event_queue(&mut self, total: u64, generation_end: u64) {
        let mut window_start = self.cycle;
        let mut window_executed = self.executed_cycles;
        let mut queue =
            TickQueue::new(self.node_count, self.link_buffers.len(), self.sources.len());
        queue.set_counters(self.counters.sched_near.clone(), self.counters.sched_heap.clone());
        for i in 0..self.sources.len() {
            if let Some(fire) = self.sources[i].next_fire_cycle() {
                if fire < generation_end {
                    self.counters.wake_source.inc();
                    queue.schedule(fire, Component::Source(i));
                }
            }
        }
        self.counters.wake_watchdog.inc();
        queue.schedule(self.last_progress + STALL_THRESHOLD, Component::Watchdog);
        let mut next = queue.pop_due(total);
        while let Some(tick) = next {
            self.cycle = tick;
            self.executed_cycles += 1;
            if tick < generation_end {
                self.generate_traffic(Some(&mut queue));
            }
            self.eject(Some(&mut queue));
            self.traverse_links(Some(&mut queue));
            let purged = self.watchdog();
            // The watchdog must fire at exactly `last_progress +
            // STALL_THRESHOLD` like the per-cycle check would; it also
            // bounds how far the loop can skip ahead, keeping every
            // conservative wake-up within one stall window.
            self.counters.wake_watchdog.inc();
            queue.schedule(self.last_progress + STALL_THRESHOLD, Component::Watchdog);
            if purged {
                self.counters.wake_watchdog.inc();
                queue.schedule(self.cycle + 1, Component::Watchdog);
            }
            // Hybrid density fall-back: once a long enough *recent*
            // window shows most cycles executing anyway, the tick queue
            // is pure overhead — finish the run cycle-stepped. A sparse
            // window re-baselines instead (a busy start must not forfeit
            // the idle tail), and the check only arms while sources
            // generate: the drain goes idle and is the event queue's
            // best case. The switch lands on an executed-tick boundary,
            // where the event-driven and stepped regimes agree on the
            // entire network state, so the report is unaffected.
            if self.loop_kind == LoopKind::Hybrid && tick < generation_end {
                let window = tick - window_start + 1;
                if window >= HYBRID_MIN_WINDOW {
                    let executed = self.executed_cycles - window_executed;
                    if executed * 100 > window * HYBRID_DENSITY_PCT {
                        self.cycle = tick + 1;
                        while self.cycle < total {
                            self.step(self.cycle < generation_end);
                        }
                        return;
                    }
                    window_start = tick + 1;
                    window_executed = self.executed_cycles;
                }
            }
            next = queue.pop_due(total);
        }
        self.cycle = total;
    }

    fn in_measurement_window(&self) -> bool {
        self.cycle >= self.config.warmup_cycles
            && self.cycle < self.config.warmup_cycles + self.config.measure_cycles
    }

    /// Polls every source for a packet due this cycle. With a tick queue
    /// attached, each fired source's next injection cycle is scheduled
    /// (non-due sources keep their already-pending wake-up and draw no
    /// randomness, so the RNG stream matches the poll-every-cycle loops).
    fn generate_traffic(&mut self, mut sched: Option<&mut TickQueue>) {
        let generation_end = self.config.warmup_cycles + self.config.measure_cycles;
        for i in 0..self.sources.len() {
            let spec = &self.flows[i];
            if let Some(path_idx) = self.sources[i].poll(self.cycle, spec, &mut self.rng) {
                let path = spec.paths[path_idx].links.clone();
                let source = spec.source;
                let measured = self.in_measurement_window();
                let packet = Packet {
                    id: self.next_packet_id,
                    flow: i,
                    flits: self.config.flits_per_packet(),
                    path,
                    generated_at: self.cycle,
                    injected_at: None,
                    measured,
                };
                self.next_packet_id += 1;
                self.generated += 1;
                if measured {
                    self.measured_outstanding += 1;
                }
                let slot = self.alloc_packet(packet);
                let flits = self.packets[slot].as_ref().expect("just placed").flits;
                let queue = self.inject_queue_of[i][path_idx];
                let was_empty = self.inject_queues[queue].is_empty();
                for f in 0..flits {
                    self.inject_queues[queue].push(FlitRef {
                        packet: slot,
                        flit: f as u32,
                        hop: 0,
                        arrived: self.cycle,
                    });
                }
                self.node_flits[source.index()] += flits as u32;
                if let Some(q) = sched.as_deref_mut() {
                    if was_empty {
                        // The queue gained a front (the packet's head):
                        // it is now a forwarding/ejection candidate.
                        self.schedule_front_wake(q, source.index(), InputId::Inject(queue));
                    }
                    if let Some(fire) = self.sources[i].next_fire_cycle() {
                        if fire < generation_end {
                            self.counters.wake_source.inc();
                            q.schedule(fire, Component::Source(i));
                        }
                    }
                }
            }
        }
    }

    fn alloc_packet(&mut self, packet: Packet) -> usize {
        if let Some(slot) = self.free_slots.pop() {
            self.packets[slot] = Some(packet);
            slot
        } else {
            self.packets.push(Some(packet));
            self.packets.len() - 1
        }
    }

    /// Per-hop delay of a buffered flit: head flits pay the router
    /// pipeline, body/tail flits stream.
    fn flit_delay(&self, flit: &FlitRef) -> u64 {
        if flit.flit == 0 {
            self.config.router_pipeline_cycles
        } else {
            1
        }
    }

    /// A flit may leave its buffer once its per-hop delay has elapsed.
    /// `arrived + delay` is also the flit's *eligibility cycle* — the
    /// event-queue loop's wake-up for moves blocked purely on this delay.
    fn eligible(&self, flit: &FlitRef) -> bool {
        flit.arrived + self.flit_delay(flit) <= self.cycle
    }

    fn buffer(&self, input: InputId, _node: usize) -> &Buffer {
        match input {
            InputId::Link(l) => &self.link_buffers[l.index()],
            InputId::Inject(q) => &self.inject_queues[q],
        }
    }

    fn buffer_mut(&mut self, input: InputId, _node: usize) -> &mut Buffer {
        match input {
            InputId::Link(l) => &mut self.link_buffers[l.index()],
            InputId::Inject(q) => &mut self.inject_queues[q],
        }
    }

    /// Next output required by `flit`: `None` = local ejection.
    fn next_link(&self, flit: &FlitRef) -> Option<LinkId> {
        let packet = self.packets[flit.packet].as_ref().expect("live packet");
        packet.path.get(flit.hop as usize).copied()
    }

    /// Ejection pass. With a tick queue attached, every move blocked
    /// *purely on time* — an ejectable front whose per-hop delay has not
    /// elapsed — schedules the node at its eligibility cycle; moves
    /// blocked on state (channel held by another packet, front mid-packet
    /// elsewhere) need no wake-up of their own, since the enabling state
    /// change is itself a movement and every movement wakes exactly what
    /// it could have enabled ([`Self::wake_after_pop`], the tail-release
    /// wake below).
    fn eject(&mut self, mut sched: Option<&mut TickQueue>) {
        let skip_idle = self.loop_kind != LoopKind::FullScan;
        for node in 0..self.node_count {
            // A node with no buffered flits has no fronts: neither the
            // allocation scan nor the owner branch below could act, so the
            // active-set loop skips it outright.
            if skip_idle && self.node_flits[node] == 0 {
                continue;
            }
            // Earliest future cycle a currently-blocked ejection at this
            // node becomes eligible (`u64::MAX` = nothing time-blocked).
            let mut retry = u64::MAX;
            'node: {
                // Allocate the ejection channel if free.
                if self.eject_channel[node].owner.is_none() {
                    let count = self.node_inputs[node].len();
                    let start = self.eject_channel[node].rr_next;
                    let mut winner = None;
                    for off in 0..count {
                        let input = self.node_inputs[node][(start + off) % count];
                        let Some(front) = self.buffer(input, node).front().copied() else {
                            continue;
                        };
                        if front.flit == 0 && self.next_link(&front).is_none() {
                            if self.eligible(&front) {
                                winner = Some((input, front.packet, off));
                                break;
                            }
                            retry = retry.min(front.arrived + self.flit_delay(&front));
                        }
                    }
                    if let Some((input, packet, off)) = winner {
                        self.eject_channel[node].allocate(input, packet);
                        self.eject_channel[node].rr_next = (start + off + 1) % count;
                    }
                }
                // Move one flit through the allocated ejection channel.
                let Some((input, packet)) = self.eject_channel[node].owner else {
                    break 'node;
                };
                let Some(front) = self.buffer(input, node).front().copied() else {
                    break 'node;
                };
                if front.packet != packet {
                    break 'node;
                }
                if !self.eligible(&front) {
                    retry = retry.min(front.arrived + self.flit_delay(&front));
                    break 'node;
                }
                let was_full = !self.buffer(input, node).has_space();
                let flit = self.buffer_mut(input, node).pop().expect("front exists");
                self.node_flits[node] -= 1;
                self.last_progress = self.cycle;
                let total_flits = self.packets[packet].as_ref().expect("live").flits;
                let is_tail = flit.flit as usize + 1 == total_flits;
                if is_tail {
                    self.eject_channel[node].release();
                    self.complete_packet(packet);
                }
                if let Some(q) = sched.as_deref_mut() {
                    self.wake_after_pop(q, node, input, was_full);
                    if is_tail && self.node_flits[node] > 0 {
                        // Ejection channel released: any other buffered
                        // flit at this node may now be allocatable.
                        self.counters.wake_tail_release.inc();
                        q.schedule(self.cycle + 1, Component::Node(node));
                    }
                }
            }
            if let Some(q) = sched.as_deref_mut() {
                if retry != u64::MAX {
                    self.counters.wake_eligibility.inc();
                    q.schedule(retry, Component::Node(node));
                }
            }
        }
    }

    fn complete_packet(&mut self, slot: usize) {
        let packet = self.packets[slot].take().expect("live packet");
        self.free_slots.push(slot);
        self.delivered += 1;
        if packet.measured {
            self.measured_outstanding -= 1;
            let latency = self.cycle - packet.generated_at;
            self.latency.record(latency);
            self.per_flow_latency[packet.flow].record(latency);
            let entered = packet.injected_at.unwrap_or(packet.generated_at);
            self.network_latency.record(self.cycle - entered);
        }
    }

    /// Applies the serialization-token accrual for every cycle up to and
    /// including the current one that `link` has not yet seen. The replay
    /// performs the identical sequence of capped additions the full-scan
    /// loop would have — fp-exact — and stops early once the cap is
    /// reached (further additions are fixed points).
    fn sync_link_tokens(&mut self, link: usize) {
        let cap = 2.0 * self.config.flit_bytes as f64;
        let rate = self.link_rate[link];
        let mut pending = self.cycle + 1 - self.link_token_due[link];
        self.link_token_due[link] = self.cycle + 1;
        if rate <= 0.0 {
            return; // each add is a no-op: tokens never grow
        }
        while pending > 0 && self.link_tokens[link] < cap {
            self.link_tokens[link] = (self.link_tokens[link] + rate).min(cap);
            pending -= 1;
        }
    }

    /// Link pass. With a tick queue attached, every forward blocked purely
    /// on *time* — a candidate flit's per-hop delay or the link's
    /// serialization-token threshold — schedules the link at the cycle the
    /// blockage expires; forwards blocked on state (full downstream
    /// buffer, channel held, front mid-packet elsewhere) are woken by the
    /// enabling movement itself ([`Self::wake_after_pop`] and the
    /// tail-release / new-downstream-front wakes in the forward below).
    fn traverse_links(&mut self, mut sched: Option<&mut TickQueue>) {
        let skip_idle = self.loop_kind != LoopKind::FullScan;
        let flit_bytes = self.config.flit_bytes as f64;
        for link in 0..self.link_buffers.len() {
            let upstream = self.link_src[link].index();
            // No flit is buffered anywhere at the upstream node: neither
            // channel allocation nor forwarding could act, and the only
            // full-scan effect — token accrual — is replayed lazily by
            // `sync_link_tokens` when the link next wakes up.
            if skip_idle && self.node_flits[upstream] == 0 {
                continue;
            }
            // Serialization: accumulate tokens. The cap must exceed one
            // flit so the fractional remainder after a send carries over
            // (otherwise every rate between flit/3 and flit/2 bytes-per-
            // cycle would quantize to the same 3-cycle serialization);
            // two flits' worth bounds idle bursts to a single extra flit.
            self.sync_link_tokens(link);
            let has_tokens = self.link_tokens[link] >= flit_bytes;
            let has_space = self.link_buffers[link].has_space();
            let link_id = LinkId::new(link);
            // Earliest future cycle a candidate flit's per-hop delay
            // expires (`u64::MAX` = no candidate is time-blocked).
            let mut elig_retry = u64::MAX;
            'link: {
                if !has_tokens || !has_space {
                    // Token-starved with room downstream: find when the
                    // current candidate (if any) could go, so the token
                    // wake-up below can wait for *both* conditions. Only
                    // worth deriving when no wake-up is already pending —
                    // the pending one either fires into an enabled forward
                    // or clears its slot for a fresh derivation here. A
                    // full buffer, by contrast, frees only via a
                    // downstream pop, and that pop wakes this link itself.
                    if !has_tokens && has_space {
                        if let Some(q) = sched.as_deref_mut() {
                            if !q.has_pending(Component::Link(link)) {
                                elig_retry = self.link_candidate_ready(link_id, upstream);
                            }
                        }
                    }
                    break 'link;
                }

                // Allocate the channel to a head flit if free.
                if self.link_channel[link].owner.is_none() {
                    let count = self.node_inputs[upstream].len();
                    let start = self.link_channel[link].rr_next;
                    let mut winner = None;
                    for off in 0..count {
                        let input = self.node_inputs[upstream][(start + off) % count];
                        let Some(front) = self.buffer(input, upstream).front().copied() else {
                            continue;
                        };
                        if front.flit == 0 && self.next_link(&front) == Some(link_id) {
                            if self.eligible(&front) {
                                winner = Some((input, front.packet, off));
                                break;
                            }
                            elig_retry = elig_retry.min(front.arrived + self.flit_delay(&front));
                        }
                    }
                    if let Some((input, packet, off)) = winner {
                        self.link_channel[link].allocate(input, packet);
                        self.link_channel[link].rr_next = (start + off + 1) % count;
                    }
                }

                // Forward one flit of the owning packet.
                let Some((input, packet)) = self.link_channel[link].owner else {
                    break 'link;
                };
                let Some(front) = self.buffer(input, upstream).front().copied() else {
                    break 'link;
                };
                if front.packet != packet {
                    break 'link;
                }
                if !self.eligible(&front) {
                    elig_retry = elig_retry.min(front.arrived + self.flit_delay(&front));
                    break 'link;
                }
                let was_full = !self.buffer(input, upstream).has_space();
                let flit = self.buffer_mut(input, upstream).pop().expect("front exists");
                self.node_flits[upstream] -= 1;
                if matches!(input, InputId::Inject(_)) && flit.flit == 0 {
                    let p = self.packets[flit.packet].as_mut().expect("live packet");
                    p.injected_at = Some(self.cycle);
                }
                self.link_tokens[link] -= flit_bytes;
                self.link_token_ready[link] = TOKEN_READY_UNKNOWN;
                self.last_progress = self.cycle;
                if self.in_measurement_window() {
                    self.link_flits[link] += 1;
                }
                let total_flits = self.packets[packet].as_ref().expect("live").flits;
                let is_tail = flit.flit as usize + 1 == total_flits;
                if is_tail {
                    self.link_channel[link].release();
                }
                let dst_was_empty = self.link_buffers[link].is_empty();
                self.link_buffers[link].push(FlitRef {
                    packet: flit.packet,
                    flit: flit.flit,
                    hop: flit.hop + 1,
                    arrived: self.cycle,
                });
                self.node_flits[self.link_dst[link].index()] += 1;
                if let Some(q) = sched.as_deref_mut() {
                    if was_full {
                        if let InputId::Link(f) = input {
                            self.counters.wake_backpressure.inc();
                            q.schedule(self.cycle + 1, Component::Link(f.index()));
                        }
                    }
                    match self.buffer(input, upstream).front() {
                        // Streaming continuation (the hot path): the new
                        // front is the owning packet's next flit, bound
                        // for this same link — whose tokens are already
                        // synced, with the send's spend applied.
                        Some(&nf) if !is_tail && nf.packet == packet => {
                            let elig = (nf.arrived + self.flit_delay(&nf)).max(self.cycle + 1);
                            if self.link_tokens[link] >= flit_bytes {
                                self.counters.wake_eligibility.inc();
                                q.schedule(elig, Component::Link(link));
                            } else if let Some(t) = self.cached_token_ready(link, flit_bytes) {
                                self.counters.wake_token_ready.inc();
                                q.schedule(t.max(elig), Component::Link(link));
                            }
                        }
                        Some(_) => self.schedule_front_wake(q, upstream, input),
                        None => {}
                    }
                    if is_tail && self.node_flits[upstream] > 0 {
                        // Channel released: another packet's head flit at
                        // this node may now be allocatable onto the link.
                        self.counters.wake_tail_release.inc();
                        q.schedule(self.cycle + 1, Component::Link(link));
                    }
                    if dst_was_empty {
                        // The forwarded flit is the new front downstream.
                        let dst = self.link_dst[link].index();
                        self.schedule_front_wake(q, dst, InputId::Link(link_id));
                    }
                }
            }
            if let Some(q) = sched.as_deref_mut() {
                // A token-starved link must wait for the later of the
                // token crossing and the candidate's eligibility; with no
                // time-blocked candidate at all there is nothing to wake
                // for (a candidate appearing is a movement → cascade).
                let retry = if has_tokens {
                    elig_retry
                } else if elig_retry == u64::MAX {
                    u64::MAX
                } else {
                    match self.cached_token_ready(link, flit_bytes) {
                        Some(t) => t.max(elig_retry),
                        None => u64::MAX,
                    }
                };
                if retry != u64::MAX {
                    if has_tokens {
                        self.counters.wake_eligibility.inc();
                    } else {
                        self.counters.wake_token_ready.inc();
                    }
                    q.schedule(retry, Component::Link(link));
                }
            }
        }
    }

    /// Wakes whatever a pop from the buffer `input` at `node` could have
    /// enabled: the link feeding that buffer, if the pop freed its only
    /// space (a space-blocked link frees *only* through such a pop), and
    /// the buffer's new front, which just became a forwarding/ejection
    /// candidate.
    fn wake_after_pop(&mut self, q: &mut TickQueue, node: usize, input: InputId, was_full: bool) {
        if was_full {
            if let InputId::Link(f) = input {
                self.counters.wake_backpressure.inc();
                q.schedule(self.cycle + 1, Component::Link(f.index()));
            }
        }
        self.schedule_front_wake(q, node, input);
    }

    /// Schedules the wake-up for the front of the buffer `input` at
    /// `node`, at the earliest future cycle it could move: its pipeline
    /// eligibility, pushed past the serialization-token crossing of the
    /// link it wants (a flit bound for a starved link cannot move at
    /// eligibility anyway). Conservative — channel or buffer-space
    /// conflicts at that cycle re-arm through the scan's own retry logic
    /// or the movement that resolves them. No wake is scheduled for an
    /// empty buffer (a push will wake the new front) or when the tokens
    /// can never cross (the oracle never moves that flit either; the
    /// watchdog eventually purges it in both loops).
    fn schedule_front_wake(&mut self, q: &mut TickQueue, node: usize, input: InputId) {
        let Some(front) = self.buffer(input, node).front().copied() else {
            return;
        };
        let elig = (front.arrived + self.flit_delay(&front)).max(self.cycle + 1);
        match self.next_link(&front) {
            None => {
                self.counters.wake_eligibility.inc();
                q.schedule(elig, Component::Node(node));
            }
            Some(l) => {
                let link = l.index();
                let flit_bytes = self.config.flit_bytes as f64;
                self.sync_link_tokens(link);
                let wake = if self.link_tokens[link] >= flit_bytes {
                    self.counters.wake_eligibility.inc();
                    elig
                } else {
                    match self.cached_token_ready(link, flit_bytes) {
                        Some(t) => {
                            self.counters.wake_token_ready.inc();
                            t.max(elig)
                        }
                        None => return,
                    }
                };
                q.schedule(wake, Component::Link(link));
            }
        }
    }

    /// Earliest cycle the link's current forwarding candidate — its
    /// channel owner's front, or any allocatable head flit if the channel
    /// is free — has its per-hop delay elapsed (`u64::MAX` = no candidate,
    /// or the owner's flit is not at a buffer front yet). Pure frozen-state
    /// prediction for the token-starved case; may be in the past when the
    /// candidate is already eligible and only tokens are missing.
    fn link_candidate_ready(&self, link_id: LinkId, upstream: usize) -> u64 {
        match self.link_channel[link_id.index()].owner {
            Some((input, packet)) => match self.buffer(input, upstream).front() {
                Some(front) if front.packet == packet => front.arrived + self.flit_delay(front),
                _ => u64::MAX,
            },
            None => {
                let mut best = u64::MAX;
                for &input in &self.node_inputs[upstream] {
                    if let Some(front) = self.buffer(input, upstream).front() {
                        if front.flit == 0 && self.next_link(front) == Some(link_id) {
                            best = best.min(front.arrived + self.flit_delay(front));
                        }
                    }
                }
                best
            }
        }
    }

    /// First cycle after the current one at which `link`'s token balance
    /// reaches one flit, replaying the *exact* capped additions
    /// [`sync_link_tokens`] will perform (fp-identical — a closed-form
    /// `k * rate` is not) on a local copy. `None` means the balance can
    /// never cross: zero rate, or an fp fixed point below the threshold
    /// (the cycle-stepped oracle would never cross either).
    /// [`Self::token_ready_cycle`] through the per-link memo. A cached
    /// prediction at or before the current cycle is recomputed: it came
    /// from the conservative replay bound, and its wake-up has now
    /// arrived with the threshold still uncrossed.
    fn cached_token_ready(&mut self, link: usize, flit_bytes: f64) -> Option<u64> {
        match self.link_token_ready[link] {
            TOKEN_READY_NEVER => None,
            t if t != TOKEN_READY_UNKNOWN && t > self.cycle => Some(t),
            _ => {
                // The prediction replays from the current balance, which
                // must first absorb any accrual the link has not yet seen.
                self.sync_link_tokens(link);
                let computed = self.token_ready_cycle(link, flit_bytes);
                self.link_token_ready[link] = computed.unwrap_or(TOKEN_READY_NEVER);
                computed
            }
        }
    }

    fn token_ready_cycle(&self, link: usize, flit_bytes: f64) -> Option<u64> {
        let cap = 2.0 * flit_bytes;
        let rate = self.link_rate[link];
        if rate <= 0.0 {
            return None;
        }
        let mut tokens = self.link_tokens[link];
        let mut t = self.cycle;
        for _ in 0..TOKEN_REPLAY_BOUND {
            t += 1;
            let next = (tokens + rate).min(cap);
            if next >= flit_bytes {
                return Some(t);
            }
            if next == tokens {
                return None; // fixed point below the threshold
            }
            tokens = next;
        }
        Some(t) // conservative wake-up; re-predict from advanced state
    }

    /// Deadlock recovery: if nothing has moved for [`STALL_THRESHOLD`]
    /// cycles while flits wait in *network* buffers, drop the oldest
    /// in-network packet. Source-queue-only stalls are legitimate idle
    /// periods and are ignored. Returns whether a packet was purged — a
    /// purge rewrites buffer fronts, channel owners and occupancy across
    /// the whole network, so the event-queue loop rescans the next cycle
    /// wholesale instead of enumerating what it could have enabled.
    fn watchdog(&mut self) -> bool {
        if self.cycle - self.last_progress < STALL_THRESHOLD {
            return false;
        }
        let network_busy = self.link_buffers.iter().any(|b| !b.is_empty());
        if !network_busy {
            self.last_progress = self.cycle;
            return false;
        }
        // Oldest packet with flits inside the network.
        let mut victim: Option<(u64, usize)> = None;
        for buffer in &self.link_buffers {
            for flit in buffer.iter() {
                let gen = self.packets[flit.packet].as_ref().expect("live").generated_at;
                if victim.is_none_or(|(g, _)| gen < g) {
                    victim = Some((gen, flit.packet));
                }
            }
        }
        let Some((_, slot)) = victim else {
            self.last_progress = self.cycle;
            return false;
        };
        for link in 0..self.link_buffers.len() {
            let purged = self.link_buffers[link].purge_packet(slot);
            self.node_flits[self.link_dst[link].index()] -= purged as u32;
        }
        for queue_id in 0..self.inject_queues.len() {
            let purged = self.inject_queues[queue_id].purge_packet(slot);
            self.node_flits[self.inject_node[queue_id].index()] -= purged as u32;
        }
        for node in 0..self.node_count {
            if self.eject_channel[node].owner.is_some_and(|(_, p)| p == slot) {
                self.eject_channel[node].release();
            }
        }
        for ch in &mut self.link_channel {
            if ch.owner.is_some_and(|(_, p)| p == slot) {
                ch.release();
            }
        }
        let packet = self.packets[slot].take().expect("live packet");
        self.free_slots.push(slot);
        self.dropped += 1;
        if packet.measured {
            self.measured_outstanding -= 1;
        }
        self.last_progress = self.cycle;
        true
    }
}

/// Validates one flow path: contiguous walk from the flow's source to its
/// destination.
fn validate_path(topology: &Topology, flow: &FlowSpec, links: &[LinkId], flow_idx: usize) {
    assert!(
        !(links.is_empty() && flow.source != flow.dest),
        "flow {flow_idx}: empty path but distinct endpoints"
    );
    let mut at = flow.source;
    for &l in links {
        let link = topology.link(l);
        assert_eq!(link.src, at, "flow {flow_idx}: path link {l} does not continue from {at}");
        at = link.dst;
    }
    assert_eq!(at, flow.dest, "flow {flow_idx}: path ends at {at}, not the destination");
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::Topology;
    use noc_units::mbps;

    fn mesh() -> Topology {
        Topology::mesh(3, 3, 1_000.0)
    }

    fn path(t: &Topology, hops: &[(usize, usize)]) -> Vec<LinkId> {
        hops.iter()
            .map(|&(a, b)| t.find_link(NodeId::new(a), NodeId::new(b)).expect("link"))
            .collect()
    }

    fn quick_config() -> SimConfig {
        SimConfig {
            warmup_cycles: 2_000,
            measure_cycles: 20_000,
            drain_cycles: 10_000,
            ..Default::default()
        }
    }

    #[test]
    fn single_flow_delivers_all_packets() {
        let t = mesh();
        let flow = FlowSpec::single_path(
            NodeId::new(0),
            NodeId::new(2),
            mbps(200.0),
            path(&t, &[(0, 1), (1, 2)]),
        );
        let mut sim = Simulator::new(&t, vec![flow], quick_config());
        let report = sim.run();
        assert!(report.generated_packets > 20);
        assert_eq!(report.dropped_packets, 0);
        assert_eq!(report.unfinished_measured_packets, 0);
        assert_eq!(report.delivered_packets, report.generated_packets);
    }

    #[test]
    fn uncontended_latency_matches_analytic_model() {
        // One 2-hop flow at light load on 1 GB/s links, 4 B flits:
        // serialization 4 cycles/flit, 17 flits. Head: ~7 (NI) + 4 + 7 + 4
        // per hop; tail arrives ~16*4 cycles after the head. Latency should
        // sit in the few-dozen range and stay far from the hundreds.
        let t = mesh();
        let flow = FlowSpec::single_path(
            NodeId::new(0),
            NodeId::new(2),
            mbps(50.0), // light load
            path(&t, &[(0, 1), (1, 2)]),
        );
        let mut sim = Simulator::new(&t, vec![flow], quick_config());
        let report = sim.run();
        let avg = report.avg_latency_cycles().to_f64();
        assert!(avg > 60.0 && avg < 130.0, "unexpected latency {avg}");
    }

    #[test]
    fn latency_grows_with_load() {
        let t = mesh();
        let mk = |rate: f64| {
            FlowSpec::single_path(
                NodeId::new(0),
                NodeId::new(2),
                mbps(rate),
                path(&t, &[(0, 1), (1, 2)]),
            )
        };
        let light = Simulator::new(&t, vec![mk(100.0)], quick_config()).run();
        let heavy = Simulator::new(&t, vec![mk(800.0)], quick_config()).run();
        assert!(
            heavy.avg_latency_cycles() > light.avg_latency_cycles(),
            "heavy {} <= light {}",
            heavy.avg_latency_cycles(),
            light.avg_latency_cycles()
        );
    }

    #[test]
    fn contention_on_shared_link_increases_latency() {
        let t = mesh();
        let solo = FlowSpec::single_path(
            NodeId::new(0),
            NodeId::new(2),
            mbps(400.0),
            path(&t, &[(0, 1), (1, 2)]),
        );
        let rival = FlowSpec::single_path(
            NodeId::new(3),
            NodeId::new(2),
            mbps(400.0),
            path(&t, &[(3, 4), (4, 1), (1, 2)]),
        );
        let alone = Simulator::new(&t, vec![solo.clone()], quick_config()).run();
        let shared = Simulator::new(&t, vec![solo, rival], quick_config()).run();
        assert!(
            shared.per_flow_latency[0].mean() > alone.per_flow_latency[0].mean(),
            "shared {} <= alone {}",
            shared.per_flow_latency[0].mean(),
            alone.per_flow_latency[0].mean()
        );
    }

    #[test]
    fn split_flow_uses_both_paths() {
        let t = mesh();
        let p1 = path(&t, &[(0, 1), (1, 2)]);
        let p2 = path(&t, &[(0, 3), (3, 4), (4, 5), (5, 2)]);
        let flow = FlowSpec::split(
            NodeId::new(0),
            NodeId::new(2),
            mbps(400.0),
            vec![(p1.clone(), 0.5), (p2.clone(), 0.5)],
        );
        let mut sim = Simulator::new(&t, vec![flow], quick_config());
        let report = sim.run();
        assert!(report.link_flits[p1[0].index()] > 0, "path 1 unused");
        assert!(report.link_flits[p2[0].index()] > 0, "path 2 unused");
        let f1 = report.link_flits[p1[0].index()] as f64;
        let f2 = report.link_flits[p2[0].index()] as f64;
        let share = f1 / (f1 + f2);
        assert!((share - 0.5).abs() < 0.1, "split share {share}");
    }

    #[test]
    fn link_throughput_matches_offered_load() {
        let t = mesh();
        let flow =
            FlowSpec::single_path(NodeId::new(0), NodeId::new(1), mbps(400.0), path(&t, &[(0, 1)]));
        let config = SimConfig {
            warmup_cycles: 5_000,
            measure_cycles: 200_000,
            drain_cycles: 10_000,
            ..Default::default()
        };
        let mut sim = Simulator::new(&t, vec![flow], config);
        let report = sim.run();
        let l = t.find_link(NodeId::new(0), NodeId::new(1)).unwrap();
        let tput = report.link_throughput_mbps(l).to_f64();
        // Offered 400 MB/s payload + 1/16 header overhead ≈ 425 MB/s.
        assert!((tput - 425.0).abs() < 50.0, "throughput {tput}");
    }

    #[test]
    fn oversubscribed_link_saturates() {
        let t = Topology::mesh(2, 1, 100.0); // one 100 MB/s channel
        let flow = FlowSpec::single_path(
            NodeId::new(0),
            NodeId::new(1),
            mbps(400.0), // 4x the capacity
            vec![t.find_link(NodeId::new(0), NodeId::new(1)).unwrap()],
        );
        let mut sim = Simulator::new(&t, vec![flow], quick_config());
        let report = sim.run();
        assert!(report.saturated(), "4x oversubscription must saturate");
    }

    #[test]
    #[should_panic(expected = "does not continue")]
    fn discontiguous_path_is_rejected() {
        let t = mesh();
        let bad = path(&t, &[(0, 1), (4, 5)]);
        let flow = FlowSpec::single_path(NodeId::new(0), NodeId::new(5), mbps(10.0), bad);
        let _ = Simulator::new(&t, vec![flow], quick_config());
    }

    #[test]
    #[should_panic(expected = "ends at")]
    fn wrong_destination_is_rejected() {
        let t = mesh();
        let flow =
            FlowSpec::single_path(NodeId::new(0), NodeId::new(5), mbps(10.0), path(&t, &[(0, 1)]));
        let _ = Simulator::new(&t, vec![flow], quick_config());
    }

    /// Runs the same flow set under every main loop and asserts the
    /// reports are bit-identical (PartialEq compares every f64 exactly).
    fn assert_loops_agree(t: &Topology, flows: Vec<FlowSpec>, config: SimConfig) -> SimReport {
        let mut full = Simulator::new(t, flows.clone(), config.clone());
        full.set_loop_kind(LoopKind::FullScan);
        let full_report = full.run();
        for kind in [LoopKind::ActiveSet, LoopKind::EventQueue, LoopKind::Hybrid] {
            let mut sim = Simulator::new(t, flows.clone(), config.clone());
            sim.set_loop_kind(kind);
            assert_eq!(sim.run(), full_report, "{kind:?} loop diverged from full scan");
        }
        full_report
    }

    #[test]
    fn active_set_matches_full_scan_under_contention() {
        let t = mesh();
        let flows = vec![
            FlowSpec::single_path(
                NodeId::new(0),
                NodeId::new(2),
                mbps(400.0),
                path(&t, &[(0, 1), (1, 2)]),
            ),
            FlowSpec::single_path(
                NodeId::new(3),
                NodeId::new(2),
                mbps(400.0),
                path(&t, &[(3, 4), (4, 1), (1, 2)]),
            ),
            FlowSpec::split(
                NodeId::new(6),
                NodeId::new(8),
                mbps(300.0),
                vec![
                    (path(&t, &[(6, 7), (7, 8)]), 0.5),
                    (path(&t, &[(6, 3), (3, 4), (4, 5), (5, 8)]), 0.5),
                ],
            ),
        ];
        let report = assert_loops_agree(&t, flows, quick_config());
        assert!(report.delivered_packets > 100, "workload too light to be meaningful");
    }

    #[test]
    fn active_set_matches_full_scan_when_saturated() {
        // Oversubscription exercises backpressure, unfinished-packet
        // accounting and (at 4x) the watchdog's deadlock-recovery drops.
        let t = Topology::mesh(2, 1, 100.0);
        let flow = FlowSpec::single_path(
            NodeId::new(0),
            NodeId::new(1),
            mbps(400.0),
            vec![t.find_link(NodeId::new(0), NodeId::new(1)).unwrap()],
        );
        let report = assert_loops_agree(&t, vec![flow], quick_config());
        assert!(report.saturated());
    }

    #[test]
    fn active_set_matches_full_scan_on_slow_links() {
        // Sub-flit-per-cycle rates make the lazy token replay do real
        // work: a 100 MB/s link accrues 0.1 B/cycle against 4 B flits, so
        // reactivated links replay long idle stretches.
        let t = Topology::mesh(3, 3, 100.0);
        let flow = FlowSpec::single_path(
            NodeId::new(0),
            NodeId::new(2),
            mbps(60.0),
            path(&t, &[(0, 1), (1, 2)]),
        );
        let report = assert_loops_agree(&t, vec![flow], quick_config());
        assert!(report.delivered_packets > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = mesh();
        let mk = || {
            FlowSpec::single_path(
                NodeId::new(0),
                NodeId::new(2),
                mbps(300.0),
                path(&t, &[(0, 1), (1, 2)]),
            )
        };
        let r1 = Simulator::new(&t, vec![mk()], quick_config()).run();
        let r2 = Simulator::new(&t, vec![mk()], quick_config()).run();
        assert_eq!(r1, r2);
    }

    #[test]
    fn zero_measure_window_throughput_is_zero_not_nan() {
        // SimReport fields are public; a hand-built report (or one merged
        // from partial windows) must not turn 0/0 into NaN.
        let report = SimReport {
            cycles: 0,
            generated_packets: 0,
            delivered_packets: 0,
            dropped_packets: 0,
            unfinished_measured_packets: 0,
            latency: LatencyStats::new(),
            network_latency: LatencyStats::new(),
            per_flow_latency: Vec::new(),
            link_flits: vec![42],
            measure_cycles: 0,
            flit_bytes: 4,
        };
        let tput = report.link_throughput_mbps(LinkId::new(0));
        assert_eq!(tput, Mbps::ZERO);
        assert!(!tput.to_f64().is_nan());
    }

    #[test]
    #[should_panic(expected = "measurement window must be non-empty")]
    fn empty_measure_window_rejected_at_construction() {
        let t = mesh();
        let flow =
            FlowSpec::single_path(NodeId::new(0), NodeId::new(1), mbps(10.0), path(&t, &[(0, 1)]));
        let config = SimConfig { measure_cycles: 0, ..Default::default() };
        let _ = Simulator::new(&t, vec![flow], config);
    }

    #[test]
    fn zero_rate_flow_generates_nothing() {
        let t = mesh();
        let flow =
            FlowSpec::single_path(NodeId::new(0), NodeId::new(1), Mbps::ZERO, path(&t, &[(0, 1)]));
        let mut sim = Simulator::new(&t, vec![flow], quick_config());
        let report = sim.run();
        assert_eq!(report.generated_packets, 0);
        assert_eq!(report.avg_latency_cycles(), Latency::ZERO);
    }
}
