//! Simulator configuration.

use noc_units::Mbps;

/// Parameters of the simulated NoC and measurement window.
///
/// Defaults follow the paper's DSP design (Table 3): 64-byte packets,
/// 7-cycle switch delay, 4-byte (32-bit) flits, 8-flit input buffers, and
/// a 1 GHz clock (1 cycle = 1 ns).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Flit width in bytes (×pipes uses 32-bit phits).
    pub flit_bytes: usize,
    /// Packet payload size in bytes (Table 3: 64 B).
    pub packet_bytes: usize,
    /// Input buffer depth per router port, in flits.
    pub buffer_flits: usize,
    /// Router pipeline delay in cycles applied to each head flit per hop
    /// (Table 3: switch delay 7 cycles).
    pub router_pipeline_cycles: u64,
    /// Warm-up cycles excluded from statistics.
    pub warmup_cycles: u64,
    /// Measured cycles after warm-up.
    pub measure_cycles: u64,
    /// Drain window after measurement so in-flight packets can finish.
    pub drain_cycles: u64,
    /// Mean burst length of the on/off sources, in packets.
    pub burst_packets: u32,
    /// Peak-to-mean ratio of the on/off sources: packets inside a burst
    /// arrive this many times faster than the long-run average rate.
    // lint: allow(f64-api) — dimensionless peak-to-mean ratio.
    pub burst_intensity: f64,
    /// RNG seed for the traffic processes.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            flit_bytes: 4,
            packet_bytes: 64,
            buffer_flits: 8,
            router_pipeline_cycles: 7,
            warmup_cycles: 20_000,
            measure_cycles: 100_000,
            drain_cycles: 30_000,
            burst_packets: 8,
            burst_intensity: 3.0,
            seed: 0xA0C0_FFEE,
        }
    }
}

impl SimConfig {
    /// Number of flits a packet occupies: one head flit (routing header)
    /// plus the payload flits.
    pub fn flits_per_packet(&self) -> usize {
        1 + self.packet_bytes.div_ceil(self.flit_bytes)
    }

    /// Bytes a link moves per cycle at `bandwidth` MB/s under the
    /// 1 GHz clock: `MB/s × 10⁶ B/MB ÷ 10⁹ cycles/s`.
    // lint: allow(f64-api) — the return is bytes-per-cycle, a clock-local
    // conversion factor with no quantity type of its own.
    pub fn bytes_per_cycle(bandwidth: Mbps) -> f64 {
        bandwidth.to_f64() / 1000.0
    }

    /// Checks the configuration, returning the first violated constraint
    /// as a message. The single source of truth for what a runnable
    /// config looks like — [`SimConfig::validate`] panics on it and
    /// layers above (the DSE simulate spec) report it as an error.
    pub fn check(&self) -> Result<(), String> {
        if self.flit_bytes == 0 {
            return Err("flit size must be non-zero".into());
        }
        if self.packet_bytes == 0 {
            return Err("packet size must be non-zero".into());
        }
        if self.buffer_flits < 2 {
            return Err("buffers must hold at least 2 flits".into());
        }
        if self.measure_cycles == 0 {
            return Err("measurement window must be non-empty".into());
        }
        if self.burst_packets == 0 {
            return Err("burst length must be non-zero".into());
        }
        if !(self.burst_intensity >= 1.0 && self.burst_intensity.is_finite()) {
            return Err("burst intensity must be >= 1".into());
        }
        // The loops compute `warmup + measure + drain` (and offsets a few
        // pipeline delays past it); reject configs where that arithmetic
        // would wrap rather than letting a release build run a "short"
        // wrapped horizon. The headroom term covers the stall threshold
        // and per-flit offsets added beyond the nominal end.
        if self
            .warmup_cycles
            .checked_add(self.measure_cycles)
            .and_then(|c| c.checked_add(self.drain_cycles))
            .and_then(|c| c.checked_add(self.router_pipeline_cycles))
            .and_then(|c| c.checked_add(1 << 16))
            .is_none()
        {
            return Err("simulation horizon (warmup + measure + drain) overflows".into());
        }
        Ok(())
    }

    /// Validates the configuration, panicking on nonsensical values.
    ///
    /// # Panics
    ///
    /// Panics on the first [`SimConfig::check`] violation.
    pub fn validate(&self) {
        if let Err(message) = self.check() {
            panic!("{message}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_packet_is_17_flits() {
        // 64 B / 4 B = 16 payload flits + 1 head.
        assert_eq!(SimConfig::default().flits_per_packet(), 17);
    }

    #[test]
    fn odd_sizes_round_up() {
        let c = SimConfig { packet_bytes: 65, ..Default::default() };
        assert_eq!(c.flits_per_packet(), 18);
        let c = SimConfig { packet_bytes: 1, ..Default::default() };
        assert_eq!(c.flits_per_packet(), 2);
    }

    #[test]
    fn bytes_per_cycle_at_1ghz() {
        assert_eq!(SimConfig::bytes_per_cycle(noc_units::mbps(1000.0)), 1.0); // 1 GB/s = 1 B/ns
        assert_eq!(SimConfig::bytes_per_cycle(noc_units::mbps(1600.0)), 1.6);
        assert_eq!(SimConfig::bytes_per_cycle(noc_units::mbps(200.0)), 0.2);
    }

    #[test]
    fn default_validates() {
        SimConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "buffers must hold")]
    fn tiny_buffer_rejected() {
        SimConfig { buffer_flits: 1, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn overflowing_horizon_rejected() {
        SimConfig { warmup_cycles: u64::MAX - 1, measure_cycles: 2, ..Default::default() }
            .validate();
    }

    #[test]
    fn check_reports_overflow_not_panic() {
        let c = SimConfig {
            drain_cycles: u64::MAX / 2,
            warmup_cycles: u64::MAX / 2 + 10,
            ..Default::default()
        };
        let err = c.check().unwrap_err();
        assert!(err.contains("overflows"), "unexpected message: {err}");
    }

    #[test]
    fn non_finite_burst_intensity_rejected() {
        for bad in [f64::NAN, f64::INFINITY, 0.5] {
            let c = SimConfig { burst_intensity: bad, ..Default::default() };
            assert!(c.check().is_err(), "intensity {bad} accepted");
        }
    }

    #[test]
    fn zero_warmup_is_a_valid_window() {
        // Zero-length warm-up is legitimate (measure from cycle 0); only
        // the measurement window itself must be non-empty.
        let c = SimConfig { warmup_cycles: 0, ..Default::default() };
        assert!(c.check().is_ok());
        let c = SimConfig { warmup_cycles: 0, measure_cycles: 0, ..Default::default() };
        assert!(c.check().is_err());
    }
}
