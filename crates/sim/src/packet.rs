//! Packets and flits.

use noc_graph::LinkId;

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitKind {
    /// First flit; carries the route and allocates channels.
    Head,
    /// Intermediate payload flit.
    Body,
    /// Last flit; releases allocated channels. Single-flit packets are
    /// represented as a Head followed by a zero-payload Tail — the model
    /// always has ≥ 2 flits per packet (header + payload).
    Tail,
}

/// A packet in flight. Flits are not materialized individually: the packet
/// tracks how many have been sent/received at each traversal point, which
/// is equivalent for a FIFO wormhole network and far cheaper.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Globally unique id (injection order).
    pub id: u64,
    /// Index of the generating flow.
    pub flow: usize,
    /// Total flits (head + payload).
    pub flits: usize,
    /// Source-routed path: links to traverse, in order.
    pub path: Vec<LinkId>,
    /// Cycle at which the packet was generated (enqueued at the source NI).
    pub generated_at: u64,
    /// Cycle at which the head flit left the source NI and entered the
    /// network (set by the simulator; `None` while still queued).
    pub injected_at: Option<u64>,
    /// True if the packet was generated inside the measurement window.
    pub measured: bool,
}

impl Packet {
    /// Kind of the `index`-th flit (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ flits`.
    pub fn flit_kind(&self, index: usize) -> FlitKind {
        assert!(index < self.flits, "flit index out of range");
        if index == 0 {
            FlitKind::Head
        } else if index + 1 == self.flits {
            FlitKind::Tail
        } else {
            FlitKind::Body
        }
    }

    /// Number of hops the packet will traverse.
    pub fn hops(&self) -> usize {
        self.path.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(flits: usize) -> Packet {
        Packet {
            id: 0,
            flow: 0,
            flits,
            path: vec![],
            generated_at: 0,
            injected_at: None,
            measured: true,
        }
    }

    #[test]
    fn flit_kinds() {
        let p = packet(3);
        assert_eq!(p.flit_kind(0), FlitKind::Head);
        assert_eq!(p.flit_kind(1), FlitKind::Body);
        assert_eq!(p.flit_kind(2), FlitKind::Tail);
    }

    #[test]
    fn two_flit_packet_has_no_body() {
        let p = packet(2);
        assert_eq!(p.flit_kind(0), FlitKind::Head);
        assert_eq!(p.flit_kind(1), FlitKind::Tail);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_flit_panics() {
        let _ = packet(2).flit_kind(2);
    }
}
