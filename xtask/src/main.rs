//! Repo automation tasks. `cargo run -p xtask -- lint` runs the
//! static-analysis pass over the unit-bearing crates (see [`lint`] for
//! the rules and allowlist policy) and exits non-zero on any violation —
//! CI runs it as a hard gate.

mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!("unknown task {other:?}\n\nusage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

/// Lints every `.rs` file under the repo's `crates/` tree (the rules
/// themselves scope to the unit-bearing crates by path).
fn run_lint() -> ExitCode {
    let root = repo_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let Ok(content) = std::fs::read_to_string(path) else {
            eprintln!("warning: cannot read {}", path.display());
            continue;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        scanned += 1;
        violations.extend(lint::lint_file(&rel, &content));
    }

    if violations.is_empty() {
        println!("lint: {scanned} files scanned, no violations");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("lint: {} violation(s) in {scanned} files", violations.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: xtask's manifest dir is `<root>/xtask`.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().expect("xtask lives one level below the root").to_path_buf()
}

/// Recursively collects `.rs` files, skipping `target/` trees.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
