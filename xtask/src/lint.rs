//! The lint rules, written as pure functions over `(path, content)` so
//! the test suite can feed synthetic sources (including deliberately
//! seeded violations) without touching the filesystem.
//!
//! Four rules, mechanically enforcing what the `noc-units` type system
//! cannot:
//!
//! 1. **`f64-api`** — no bare `f64` in `pub fn` signatures or `pub`
//!    struct fields of the unit-bearing crates. Genuinely dimensionless
//!    values (fractions, ratios, weights) and documented raw-numeric
//!    seams are exempted with an inline marker.
//! 2. **`hash-container`** — no `std::collections::HashMap`/`HashSet` in
//!    deterministic result paths: their iteration order is a latent
//!    nondeterminism bug. Lookup-only maps that are never iterated may be
//!    exempted with a marker.
//! 3. **`wall-clock`** — no `Instant::now` outside the probe/timing
//!    seams; wall-clock reads anywhere else leak nondeterminism into
//!    results.
//! 4. **`raw-guard`** — every `pub fn raw(` constructor in `noc-units`
//!    must `debug_assert!` its invariant within its body, so the
//!    NaN-freedom guards cannot silently rot.
//!
//! # Allowlist policy
//!
//! A finding is suppressed by a marker comment on the offending line or
//! the line directly above: `// lint: allow(<rule>) — <reason>`. A
//! whole file opts out of one rule with `// lint: allow-file(<rule>) —
//! <reason>` anywhere in the file. The reason is mandatory by
//! convention (reviewed, not parsed). Test modules (`#[cfg(test)]`) and
//! comment/doc lines are out of scope for rules 1–3.

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`f64-api`, `hash-container`, `wall-clock`,
    /// `raw-guard`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Lints one source file; `path` is repo-relative with `/` separators.
pub fn lint_file(path: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    if in_scope_for_api_rules(path) {
        check_f64_api(path, content, &mut out);
        check_hash_container(path, content, &mut out);
        check_wall_clock(path, content, &mut out);
    }
    if path.starts_with("crates/units/src/") {
        check_raw_guard(path, content, &mut out);
    }
    out
}

/// The crates rules 1–3 apply to: the unit-bearing crates plus the LP
/// solver (whose tableaux sit on every deterministic result path; its
/// dimensionless `f64` API is opted out per file, keeping the
/// hash-container and wall-clock rules in force). Consumers
/// (experiments, baselines, bench, the vendored shims) and the probe
/// crate (a timing seam by design) are out of scope.
fn in_scope_for_api_rules(path: &str) -> bool {
    [
        "crates/graph/src/",
        "crates/core/src/",
        "crates/sim/src/",
        "crates/dse/src/",
        "crates/lp/src/",
    ]
    .iter()
    .any(|p| path.starts_with(p))
}

/// Lines at or past the first `#[cfg(test)]` are test scope (the
/// workspace convention keeps test modules at the bottom of each file).
fn test_scope_start(lines: &[&str]) -> usize {
    lines.iter().position(|l| l.trim_start().starts_with("#[cfg(test)]")).unwrap_or(lines.len())
}

/// True when line `i` (0-based) is exempted from `rule` by a marker on
/// the line itself, anywhere in the contiguous comment/attribute block
/// directly above it, or file-wide.
fn allowed(lines: &[&str], i: usize, rule: &str, file_allows: &[String]) -> bool {
    if file_allows.iter().any(|r| r == rule) {
        return true;
    }
    let marker = format!("lint: allow({rule})");
    if lines[i].contains(&marker) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = lines[j].trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("/*") || t.starts_with('*') {
            if lines[j].contains(&marker) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Collects the file-wide `lint: allow-file(<rule>)` directives.
fn file_allows(lines: &[&str]) -> Vec<String> {
    let mut rules = Vec::new();
    for l in lines {
        if let Some(rest) = l.split("lint: allow-file(").nth(1) {
            if let Some(rule) = rest.split(')').next() {
                rules.push(rule.to_string());
            }
        }
    }
    rules
}

/// True for lines that are entirely comment or doc text.
fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("/*") || t.starts_with('*')
}

/// Strips a trailing `// ...` comment so tokens in prose don't count.
fn code_of(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Rule 1: bare `f64` in public signatures — `pub fn` parameter/return
/// types and `pub` struct fields.
fn check_f64_api(path: &str, content: &str, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = content.lines().collect();
    let limit = test_scope_start(&lines);
    let allows = file_allows(&lines);
    let mut i = 0;
    while i < limit {
        let line = lines[i];
        if is_comment(line) {
            i += 1;
            continue;
        }
        let code = code_of(line);
        // Public function signatures (possibly spanning lines): scan from
        // the `pub fn` line to the body `{` or declaration `;`.
        if code.contains("pub fn ") {
            let start = i;
            let mut sig = String::new();
            while i < limit {
                let c = code_of(lines[i]);
                sig.push_str(c);
                sig.push(' ');
                if c.contains('{') || c.trim_end().ends_with(';') {
                    break;
                }
                i += 1;
            }
            let sig = sig.split('{').next().unwrap_or(&sig);
            if has_f64_token(sig) && !allowed(&lines, start, "f64-api", &allows) {
                out.push(Violation {
                    file: path.to_string(),
                    line: start + 1,
                    rule: "f64-api",
                    message: format!(
                        "bare `f64` in public signature `{}` — use a noc-units quantity, or mark \
                         a dimensionless value with `// lint: allow(f64-api) — <reason>`",
                        code.trim()
                    ),
                });
            }
            i += 1;
            continue;
        }
        // Public struct fields: `pub name: ...f64...`.
        if is_pub_field(code) && has_f64_token(code) && !allowed(&lines, i, "f64-api", &allows) {
            out.push(Violation {
                file: path.to_string(),
                line: i + 1,
                rule: "f64-api",
                message: format!(
                    "bare `f64` in public field `{}` — use a noc-units quantity, or mark a \
                     dimensionless value with `// lint: allow(f64-api) — <reason>`",
                    code.trim()
                ),
            });
        }
        i += 1;
    }
}

/// True for a `pub <name>: <type>` struct-field line (not `pub fn`,
/// `pub struct`, `pub const`, ...).
fn is_pub_field(code: &str) -> bool {
    let t = code.trim_start();
    let Some(rest) = t.strip_prefix("pub ") else { return false };
    for kw in ["fn ", "struct ", "enum ", "const ", "static ", "mod ", "use ", "type ", "trait "] {
        if rest.starts_with(kw) {
            return false;
        }
    }
    // A field line has `name: Type` before any `=` (consts are filtered
    // above; this keeps `pub x: f64,` and rejects expressions).
    rest.split('=').next().is_some_and(|head| head.contains(':'))
}

/// True when `f64` appears as a standalone token (not `to_f64`,
/// `fmt_f64`, `as_f64`, ...).
fn has_f64_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("f64") {
        let i = from + pos;
        let before_ok = i == 0 || {
            let b = bytes[i - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after = i + 3;
        let after_ok = after >= bytes.len() || {
            let b = bytes[after];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        from = after;
    }
    false
}

/// Rule 2: `HashMap`/`HashSet` in deterministic result paths.
fn check_hash_container(path: &str, content: &str, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = content.lines().collect();
    let limit = test_scope_start(&lines);
    let allows = file_allows(&lines);
    for (i, line) in lines.iter().enumerate().take(limit) {
        if is_comment(line) {
            continue;
        }
        let code = code_of(line);
        for token in ["HashMap", "HashSet"] {
            if code.contains(token) && !allowed(&lines, i, "hash-container", &allows) {
                out.push(Violation {
                    file: path.to_string(),
                    line: i + 1,
                    rule: "hash-container",
                    message: format!(
                        "`{token}` in a deterministic result path (iteration order is \
                         unspecified) — use `BTreeMap`/`BTreeSet`, or mark a never-iterated \
                         lookup with `// lint: allow(hash-container) — <reason>`"
                    ),
                });
                break;
            }
        }
    }
}

/// Rule 3: `Instant::now` outside the probe/timing seams.
fn check_wall_clock(path: &str, content: &str, out: &mut Vec<Violation>) {
    let lines: Vec<&str> = content.lines().collect();
    let limit = test_scope_start(&lines);
    let allows = file_allows(&lines);
    for (i, line) in lines.iter().enumerate().take(limit) {
        if is_comment(line) {
            continue;
        }
        if code_of(line).contains("Instant::now") && !allowed(&lines, i, "wall-clock", &allows) {
            out.push(Violation {
                file: path.to_string(),
                line: i + 1,
                rule: "wall-clock",
                message: "`Instant::now` outside the probe/timing seams leaks wall-clock \
                          nondeterminism into results — route timing through `StageTimes`/the \
                          probe, or mark a timing seam with `// lint: allow(wall-clock) — \
                          <reason>`"
                    .to_string(),
            });
        }
    }
}

/// Rule 4: every `pub fn raw(` in `noc-units` must `debug_assert!` its
/// invariant within the next few lines (the NaN-freedom guard).
fn check_raw_guard(path: &str, content: &str, out: &mut Vec<Violation>) {
    const WINDOW: usize = 8;
    let lines: Vec<&str> = content.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if is_comment(line) || !code_of(line).contains("pub fn raw(") {
            continue;
        }
        let guarded = lines[i..lines.len().min(i + WINDOW)]
            .iter()
            .any(|l| code_of(l).contains("debug_assert!"));
        if !guarded {
            out.push(Violation {
                file: path.to_string(),
                line: i + 1,
                rule: "raw-guard",
                message: "`pub fn raw(` without a `debug_assert!` guard in its body — the \
                          trusted constructor must debug-assert its invariant"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IN_SCOPE: &str = "crates/core/src/seeded.rs";

    fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn seeded_f64_signature_is_caught() {
        // The negative test the acceptance criteria call for: a seeded
        // violation must fail the lint.
        let src = "pub fn comm_cost(&self) -> f64 {\n    0.0\n}\n";
        let v = lint_file(IN_SCOPE, src);
        assert_eq!(rules_of(&v), ["f64-api"], "{v:?}");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn seeded_f64_field_is_caught() {
        let src = "pub struct R {\n    pub comm_cost: f64,\n}\n";
        let v = lint_file(IN_SCOPE, src);
        assert_eq!(rules_of(&v), ["f64-api"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn multi_line_signatures_are_scanned_to_the_body() {
        let src = "pub fn route(\n    &self,\n    rate: f64,\n) -> usize {\n";
        assert_eq!(rules_of(&lint_file(IN_SCOPE, src)), ["f64-api"]);
    }

    #[test]
    fn marker_and_file_directives_suppress() {
        let inline = "// lint: allow(f64-api) — dimensionless fraction\npub fn frac() -> f64;\n";
        assert!(lint_file(IN_SCOPE, inline).is_empty());
        let same_line = "pub frac: f64, // lint: allow(f64-api) — dimensionless\n";
        assert!(lint_file(IN_SCOPE, &format!("pub struct S {{\n{same_line}}}\n")).is_empty());
        let file_wide = "// lint: allow-file(f64-api) — raw numeric seam\npub fn x() -> f64;\n";
        assert!(lint_file(IN_SCOPE, file_wide).is_empty());
    }

    #[test]
    fn non_api_f64_is_fine() {
        let src = "fn private(x: f64) -> f64 { x }\nlet y: f64 = 0.0;\n";
        assert!(lint_file(IN_SCOPE, src).is_empty());
        // `to_f64`/`as_f64` calls are not the `f64` token.
        let src = "pub fn show(&self) -> String { format!(\"{}\", self.0.to_f64()) }\n";
        assert!(lint_file(IN_SCOPE, src).is_empty());
    }

    #[test]
    fn test_modules_and_comments_are_out_of_scope() {
        let src = "/// Returns f64 things.\n#[cfg(test)]\nmod tests {\n    pub fn x() -> f64 { \
                   0.0 }\n    use std::collections::HashMap;\n}\n";
        assert!(lint_file(IN_SCOPE, src).is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let src = "pub fn comm_cost(&self) -> f64;\nuse std::collections::HashMap;\n";
        assert!(lint_file("crates/experiments/src/fig3.rs", src).is_empty());
        assert!(lint_file("crates/probe/src/on.rs", src).is_empty());
        assert!(lint_file("vendor/rand/src/lib.rs", src).is_empty());
    }

    #[test]
    fn seeded_hash_container_is_caught_and_markable() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_of(&lint_file(IN_SCOPE, src)), ["hash-container"]);
        let marked =
            "// lint: allow(hash-container) — lookup-only\nuse std::collections::HashMap;\n";
        assert!(lint_file(IN_SCOPE, marked).is_empty());
        assert_eq!(rules_of(&lint_file(IN_SCOPE, "let s = HashSet::new();\n")), ["hash-container"]);
    }

    #[test]
    fn seeded_wall_clock_is_caught_and_markable() {
        let src = "let t = Instant::now();\n";
        assert_eq!(rules_of(&lint_file(IN_SCOPE, src)), ["wall-clock"]);
        let marked = "let t = Instant::now(); // lint: allow(wall-clock) — timing seam\n";
        assert!(lint_file(IN_SCOPE, marked).is_empty());
    }

    #[test]
    fn seeded_unguarded_raw_constructor_is_caught() {
        let good = "impl Q {\n    pub fn raw(v: f64) -> Self {\n        \
                    debug_assert!(v.is_finite());\n        Self(v)\n    }\n}\n";
        assert!(lint_file("crates/units/src/lib.rs", good).is_empty());
        let bad = "impl Q {\n    pub fn raw(v: f64) -> Self {\n        Self(v)\n    }\n}\n";
        assert_eq!(rules_of(&lint_file("crates/units/src/lib.rs", bad)), ["raw-guard"]);
        // The rule only applies to the units crate (the same snippet in
        // core scope trips `f64-api` instead, not `raw-guard`).
        assert!(!rules_of(&lint_file(IN_SCOPE, bad)).contains(&"raw-guard"));
    }

    #[test]
    fn sharded_sweep_modules_are_in_scope() {
        // The PR-9 stage-cache and shard modules sit squarely on
        // deterministic result paths (cache keys, checkpoint manifests,
        // restored records), so the hash-container and wall-clock rules
        // must cover them — pin that a scope refactor cannot drop them.
        for path in ["crates/dse/src/cache.rs", "crates/dse/src/shard.rs"] {
            let src = "use std::collections::HashMap;\nlet t = Instant::now();\n";
            assert_eq!(rules_of(&lint_file(path, src)), ["hash-container", "wall-clock"], "{path}");
        }
    }

    #[test]
    fn lp_modules_are_in_scope() {
        // PR 10 moved the warm-start machinery into `noc-lp`; the solver
        // feeds every routing result, so the determinism rules
        // (hash-container, wall-clock) must cover it — pin that a scope
        // refactor cannot drop the crate. Its `f64` API stays legal only
        // through explicit per-file `allow-file(f64-api)` markers.
        for path in
            ["crates/lp/src/simplex.rs", "crates/lp/src/revised.rs", "crates/lp/src/problem.rs"]
        {
            let src = "use std::collections::HashMap;\nlet t = Instant::now();\npub fn x() -> \
                       f64;\n";
            assert_eq!(
                rules_of(&lint_file(path, src)),
                ["f64-api", "hash-container", "wall-clock"],
                "{path}"
            );
        }
    }

    #[test]
    fn violations_render_location_and_rule() {
        let v = &lint_file(IN_SCOPE, "pub fn x() -> f64;\n")[0];
        let shown = v.to_string();
        assert!(shown.contains("crates/core/src/seeded.rs:1"), "{shown}");
        assert!(shown.contains("[f64-api]"), "{shown}");
    }
}
