//! **nmap-suite** — umbrella crate of the NMAP reproduction workspace.
//!
//! Re-exports the public APIs of every member crate so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`graph`] — core graphs, NoC topologies, quadrant DAGs, random graphs
//!   ([`noc_graph`]).
//! * [`lp`] — the two-phase simplex LP solver ([`noc_lp`]).
//! * [`nmap`] — the NMAP mapping algorithms (single-path and
//!   split-traffic) and MCF formulations.
//! * [`baselines`] — PMAP, GMAP and PBB comparison mappers
//!   ([`noc_baselines`]).
//! * [`dse`] — the parallel design-space exploration engine
//!   ([`noc_dse`]).
//! * [`sim`] — the flit-level wormhole NoC simulator ([`noc_sim`]).
//! * [`apps`] — the paper's benchmark applications ([`noc_apps`]).
//!
//! See `README.md` for the quickstart and `DESIGN.md` for the system
//! inventory; runnable walk-throughs live in `examples/`.

#![forbid(unsafe_code)]

pub use noc_apps as apps;
pub use noc_baselines as baselines;
pub use noc_dse as dse;
pub use noc_graph as graph;
pub use noc_lp as lp;
pub use noc_sim as sim;
pub use noc_units as units;

pub use nmap;
