//! Cross-crate integration tests: application graphs → mapping algorithms
//! → routing → LP cross-checks → simulation.

use nmap_suite::apps::{self, App};
use nmap_suite::baselines::{gmap, pbb, pmap, PbbOptions};
use nmap_suite::graph::Topology;
use nmap_suite::nmap::{
    map_single_path, map_with_splitting, mcf::solve_mcf, routing, MappingProblem, McfKind,
    PathScope, SinglePathOptions, SplitOptions,
};
use nmap_suite::sim::{SimConfig, Simulator};
use noc_experiments::fig5c::{design_dsp, flows_from_tables};

fn problem_for(app: App, capacity: f64) -> MappingProblem {
    let g = app.core_graph();
    let (w, h) = app.mesh_dims();
    MappingProblem::new(g, Topology::mesh(w, h, capacity)).expect("app fits mesh")
}

#[test]
fn every_app_maps_feasibly_with_generous_links() {
    for app in App::all() {
        let problem = problem_for(app, 2_000.0);
        let out = map_single_path(&problem, &SinglePathOptions::default()).expect("maps");
        assert!(out.feasible, "{app} infeasible at 2 GB/s links");
        assert!(out.mapping.is_complete(problem.cores()));
        // Cost can never be below the 1-hop-per-edge lower bound.
        assert!(out.comm_cost.to_f64() >= problem.cores().total_bandwidth().to_f64() - 1e-9);
    }
}

#[test]
fn all_mappers_produce_valid_injective_mappings() {
    let problem = problem_for(App::Vopd, 2_000.0);
    let mappings = vec![
        pmap(&problem),
        gmap(&problem),
        pbb(&problem, &PbbOptions { max_queue: 500, max_expansions: 5_000 }).mapping,
        map_single_path(&problem, &SinglePathOptions::default()).unwrap().mapping,
    ];
    for mapping in mappings {
        assert!(mapping.is_complete(problem.cores()));
        let mut hosts: Vec<_> = mapping.assignments().map(|(_, n)| n).collect();
        hosts.sort();
        hosts.dedup();
        assert_eq!(hosts.len(), problem.cores().core_count(), "mapping not injective");
    }
}

#[test]
fn split_mapping_beats_or_ties_single_path_bandwidth_on_pip() {
    let problem = problem_for(App::Pip, 1e9);
    let single = map_single_path(&problem, &SinglePathOptions::default()).unwrap();
    let split = map_with_splitting(&problem, &SplitOptions::default()).unwrap();
    assert!(split.feasible);
    // The split flow's worst link can never exceed the single-path one
    // computed on the same-cost placement family.
    assert!(
        split.link_loads.max() <= single.link_loads.max() + 1e-6,
        "split max load {} > single-path {}",
        split.link_loads.max(),
        single.link_loads.max()
    );
}

#[test]
fn mcf2_equals_comm_cost_when_uncapacitated() {
    // With unlimited capacities, the minimal total flow routes every
    // commodity over shortest paths, so the MCF2 objective must equal the
    // Equation-7 cost — the LP and the combinatorial metric cross-check
    // each other.
    let problem = problem_for(App::Pip, 1e9);
    let out = map_single_path(&problem, &SinglePathOptions::default()).unwrap();
    let mcf2 = solve_mcf(&problem, &out.mapping, McfKind::FlowMin, PathScope::AllPaths).unwrap();
    assert!(
        (mcf2.objective - out.comm_cost.to_f64()).abs() < 1e-4,
        "MCF2 {} vs Eq7 {}",
        mcf2.objective,
        out.comm_cost
    );
}

#[test]
fn min_max_lp_is_a_lower_bound_for_the_greedy_router() {
    for app in [App::Pip, App::Mwa] {
        let problem = problem_for(app, 1e9);
        let out = map_single_path(&problem, &SinglePathOptions::default()).unwrap();
        let lp =
            solve_mcf(&problem, &out.mapping, McfKind::MinMaxLoad, PathScope::Quadrant).unwrap();
        assert!(
            lp.objective <= out.link_loads.max() + 1e-6,
            "{app}: LP bound {} above greedy max load {}",
            lp.objective,
            out.link_loads.max()
        );
    }
}

#[test]
fn routed_tables_reproduce_link_loads_for_all_apps() {
    for app in App::all() {
        let problem = problem_for(app, 1e9);
        let out = map_single_path(&problem, &SinglePathOptions::default()).unwrap();
        let commodities = problem.commodities(&out.mapping);
        let recomputed = out.tables.link_loads(problem.topology(), &commodities);
        for (id, _) in problem.topology().links() {
            assert!(
                (out.link_loads.get(id) - recomputed.get(id)).abs() < 1e-9,
                "{app}: link {id} load mismatch"
            );
        }
    }
}

#[test]
fn xy_and_min_path_agree_on_hop_counts() {
    // Both routings are minimal, so per-commodity hop counts must match
    // the Manhattan distance even though the paths may differ.
    let problem = problem_for(App::Dsd, 1e9);
    let mapping = gmap(&problem);
    let (xy_paths, _) = routing::route_xy(&problem, &mapping).unwrap();
    let (mp_paths, _) = routing::route_min_paths(&problem, &mapping).unwrap();
    for (xy, mp) in xy_paths.iter().zip(&mp_paths) {
        assert_eq!(xy.hops(), mp.hops(), "non-minimal route for edge {:?}", xy.edge);
    }
}

#[test]
fn dsp_design_simulates_end_to_end() {
    let design = design_dsp();
    let topology = Topology::mesh(3, 2, 1_600.0);
    for tables in [&design.minpath_tables, &design.split_tables] {
        let flows = flows_from_tables(&design.problem, &design.mapping, tables);
        let config = SimConfig {
            warmup_cycles: 1_000,
            measure_cycles: 20_000,
            drain_cycles: 10_000,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&topology, flows, config);
        let report = sim.run();
        assert!(report.delivered_packets > 100, "too few packets simulated");
        assert_eq!(report.dropped_packets, 0, "deadlock recovery fired");
        assert!(report.avg_latency_cycles().to_f64() > 0.0);
    }
}

#[test]
fn torus_mapping_is_no_worse_than_mesh() {
    // A torus strictly extends the mesh's link set, so NMAP must find a
    // mapping at least as cheap (the future-work topology exploration).
    let app = apps::mpeg4();
    let mesh = MappingProblem::new(app.clone(), Topology::mesh(4, 4, 1e9)).unwrap();
    let torus = MappingProblem::new(app, Topology::torus(4, 4, 1e9)).unwrap();
    let mesh_cost = map_single_path(&mesh, &SinglePathOptions::default()).unwrap().comm_cost;
    let torus_cost = map_single_path(&torus, &SinglePathOptions::default()).unwrap().comm_cost;
    assert!(
        torus_cost.to_f64() <= mesh_cost.to_f64() + 1e-9,
        "torus {torus_cost} worse than mesh {mesh_cost}"
    );
}

#[test]
fn quadrant_split_never_beats_all_path_split() {
    let problem = problem_for(App::Pip, 1e9);
    let out = map_single_path(&problem, &SinglePathOptions::default()).unwrap();
    let tm = solve_mcf(&problem, &out.mapping, McfKind::MinMaxLoad, PathScope::Quadrant)
        .unwrap()
        .objective;
    let ta = solve_mcf(&problem, &out.mapping, McfKind::MinMaxLoad, PathScope::AllPaths)
        .unwrap()
        .objective;
    assert!(ta <= tm + 1e-6, "all-path split {ta} worse than quadrant {tm}");
}
