//! Umbrella-crate smoke test: the re-export surface promised by
//! `src/lib.rs` must resolve, and a trivial end-to-end map must succeed
//! through the re-exported paths alone.

use nmap_suite::nmap::{map_single_path, MappingProblem, SinglePathOptions};

/// Every re-exported module path resolves and exposes its flagship type.
/// (This is a compile-time guarantee; the trivial uses keep it honest.)
#[test]
fn reexported_paths_resolve() {
    // nmap_suite::graph -> noc_graph
    let mesh: nmap_suite::graph::Topology = nmap_suite::graph::Topology::mesh(2, 2, 1_000.0);
    assert_eq!(mesh.node_count(), 4);

    // nmap_suite::lp -> noc_lp
    let mut lp = nmap_suite::lp::LinearProgram::new(nmap_suite::lp::Sense::Minimize);
    let x = lp.add_variable("x", 1.0);
    lp.add_ge(&[(x, 1.0)], 2.0);
    let sol = lp.solve().expect("a one-variable LP solves");
    assert!((sol.objective - 2.0).abs() < 1e-9);

    // nmap_suite::apps -> noc_apps
    assert_eq!(nmap_suite::apps::App::all().len(), 6);

    // nmap_suite::sim -> noc_sim
    let config = nmap_suite::sim::SimConfig::default();
    assert!(config.measure_cycles > 0);

    // nmap_suite::baselines -> noc_baselines
    let opts = nmap_suite::baselines::PbbOptions::default();
    assert!(opts.max_expansions > 0);

    // nmap_suite::dse -> noc_dse
    let set = nmap_suite::dse::ScenarioSet::builder()
        .app(nmap_suite::apps::App::Pip)
        .mapper(nmap_suite::dse::MapperSpec::NmapInit)
        .build();
    let report = nmap_suite::dse::run_sweep(&set, &nmap_suite::dse::EngineOptions::default());
    assert_eq!(report.records.len(), 1);
    assert!(report.records[0].is_ok());

    // nmap_suite::nmap -> nmap (the core crate)
    let _: fn(&MappingProblem) -> nmap_suite::nmap::Mapping = nmap_suite::nmap::initialize;
}

/// A four-core pipeline maps onto a 2x2 mesh feasibly with the obvious
/// minimal cost: every pipeline edge spans exactly one mesh link.
#[test]
fn trivial_end_to_end_map_succeeds() {
    let mut app = nmap_suite::graph::CoreGraph::new();
    let cores: Vec<_> = (0..4).map(|i| app.add_core(format!("core{i}"))).collect();
    app.add_comm(cores[0], cores[1], 400.0).expect("valid edge");
    app.add_comm(cores[1], cores[2], 300.0).expect("valid edge");
    app.add_comm(cores[2], cores[3], 200.0).expect("valid edge");

    let mesh = nmap_suite::graph::Topology::mesh(2, 2, 1_000.0);
    let problem = MappingProblem::new(app, mesh).expect("4 cores fit a 2x2 mesh");
    let outcome = map_single_path(&problem, &SinglePathOptions::default()).expect("maps");

    assert!(outcome.feasible, "a light pipeline must satisfy 1 GB/s links");
    assert!(outcome.mapping.is_complete(problem.cores()));
    assert_eq!(outcome.comm_cost.to_f64(), 400.0 + 300.0 + 200.0);
    assert_eq!(outcome.comm_cost, problem.comm_cost(&outcome.mapping));
}
