//! Reproducibility: every algorithm in the workspace is deterministic —
//! the same inputs always give byte-identical outputs, across mappers,
//! LPs, routing, random generators and the simulator.

use nmap_suite::apps::App;
use nmap_suite::baselines::{gmap, pbb, pmap, PbbOptions};
use nmap_suite::graph::{RandomGraphConfig, Topology};
use nmap_suite::nmap::{
    map_single_path, map_with_splitting, mcf::solve_mcf, MappingProblem, McfKind, PathScope,
    SinglePathOptions, SplitOptions,
};
use nmap_suite::sim::{FlowSpec, SimConfig, Simulator};
use nmap_suite::units::mbps;

fn problem() -> MappingProblem {
    let g = App::Pip.core_graph();
    MappingProblem::new(g, Topology::mesh(3, 3, 1_000.0)).unwrap()
}

#[test]
fn mappers_are_deterministic() {
    let p = problem();
    assert_eq!(pmap(&p), pmap(&p));
    assert_eq!(gmap(&p), gmap(&p));
    let opts = PbbOptions { max_queue: 1_000, max_expansions: 10_000 };
    assert_eq!(pbb(&p, &opts).mapping, pbb(&p, &opts).mapping);
    let a = map_single_path(&p, &SinglePathOptions::default()).unwrap();
    let b = map_single_path(&p, &SinglePathOptions::default()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn split_mapper_is_deterministic() {
    let p = problem();
    let opts = SplitOptions { scope: PathScope::Quadrant, passes: 1 };
    let a = map_with_splitting(&p, &opts).unwrap();
    let b = map_with_splitting(&p, &opts).unwrap();
    assert_eq!(a.mapping, b.mapping);
    assert_eq!(a.total_flow, b.total_flow);
    assert_eq!(a.tables, b.tables);
}

#[test]
fn lp_solutions_are_deterministic() {
    let p = problem();
    let m = map_single_path(&p, &SinglePathOptions::default()).unwrap().mapping;
    let a = solve_mcf(&p, &m, McfKind::FlowMin, PathScope::AllPaths).unwrap();
    let b = solve_mcf(&p, &m, McfKind::FlowMin, PathScope::AllPaths).unwrap();
    assert_eq!(a, b);
}

#[test]
fn random_graphs_reproduce_from_seeds() {
    let cfg = RandomGraphConfig::default();
    assert_eq!(cfg.generate(99), cfg.generate(99));
    assert_ne!(cfg.generate(99), cfg.generate(100));
}

#[test]
fn simulator_reproduces_from_seed() {
    let t = Topology::mesh(2, 2, 800.0);
    let link =
        t.find_link(nmap_suite::graph::NodeId::new(0), nmap_suite::graph::NodeId::new(1)).unwrap();
    let mk = || {
        vec![FlowSpec::single_path(
            nmap_suite::graph::NodeId::new(0),
            nmap_suite::graph::NodeId::new(1),
            mbps(300.0),
            vec![link],
        )]
    };
    let config = SimConfig {
        warmup_cycles: 500,
        measure_cycles: 5_000,
        drain_cycles: 2_000,
        ..SimConfig::default()
    };
    let a = Simulator::new(&t, mk(), config.clone()).run();
    let b = Simulator::new(&t, mk(), config.clone()).run();
    assert_eq!(a, b);
    // A different seed changes the burst timing and thus the exact stats.
    let other = SimConfig { seed: 1, ..config };
    let c = Simulator::new(&t, mk(), other).run();
    assert_ne!(a.latency, c.latency);
}
