//! Integration tests for the text formats: the built-in applications
//! round-trip through the `.app` format and map identically afterwards.

use nmap_suite::apps::App;
use nmap_suite::graph::{parse_core_graph, parse_topology, write_core_graph, Topology};
use nmap_suite::nmap::{map_single_path, MappingProblem, SinglePathOptions};

#[test]
fn all_apps_round_trip_through_the_text_format() {
    for app in App::all() {
        let original = app.core_graph();
        let text = write_core_graph(&original);
        let parsed = parse_core_graph(&text).unwrap_or_else(|e| panic!("{app}: {e}"));
        assert_eq!(parsed, original, "{app} did not round-trip");
    }
}

#[test]
fn parsed_graph_maps_identically_to_builtin() {
    let app = App::Pip;
    let builtin = app.core_graph();
    let parsed = parse_core_graph(&write_core_graph(&builtin)).unwrap();

    let (w, h) = app.mesh_dims();
    let p1 = MappingProblem::new(builtin, Topology::mesh(w, h, 1_000.0)).unwrap();
    let p2 = MappingProblem::new(parsed, Topology::mesh(w, h, 1_000.0)).unwrap();
    let m1 = map_single_path(&p1, &SinglePathOptions::default()).unwrap();
    let m2 = map_single_path(&p2, &SinglePathOptions::default()).unwrap();
    assert_eq!(m1.mapping, m2.mapping);
    assert_eq!(m1.comm_cost, m2.comm_cost);
}

#[test]
fn topology_formats_parse_to_working_problems() {
    let mesh = parse_topology("mesh 3 3 1000\n").unwrap();
    let torus = parse_topology("torus 3 3 1000\n").unwrap();
    let graph = App::Pip.core_graph();
    for topology in [mesh, torus] {
        let problem = MappingProblem::new(graph.clone(), topology).unwrap();
        let out = map_single_path(&problem, &SinglePathOptions::default()).unwrap();
        assert!(out.feasible);
    }
}

#[test]
fn dsp_app_written_by_hand_matches_builtin() {
    // The exact DSP filter graph, written the way a user would write it.
    let text = "\
# DSP filter design, Figure 5(a)
comm arm memory 200
comm memory arm 200
comm memory fft 200
comm fft filter 600
comm filter fft 600
comm fft ifft 200
comm ifft memory 200
comm ifft display 200
";
    let parsed = parse_core_graph(text).unwrap();
    let builtin = nmap_suite::apps::dsp_filter();
    assert_eq!(parsed.core_count(), builtin.core_count());
    assert_eq!(parsed.edge_count(), builtin.edge_count());
    assert_eq!(parsed.total_bandwidth(), builtin.total_bandwidth());
}
