//! Video-pipeline walkthrough: compare all mapping algorithms on the six
//! video applications the paper evaluates, under both routing regimes.
//!
//! For each application this prints the communication cost of PMAP, GMAP,
//! PBB and NMAP, and the minimum link bandwidth the NMAP mapping needs
//! under single-path vs split-traffic routing — the data behind the
//! paper's Figures 3 and 4.
//!
//! Run with: `cargo run --release --example video_pipeline`

use nmap_suite::apps::App;
use nmap_suite::baselines::{gmap, pbb, pmap, PbbOptions};
use nmap_suite::graph::Topology;
use nmap_suite::nmap::{
    map_single_path, mcf::solve_mcf, MappingProblem, McfKind, PathScope, SinglePathOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} {:>7} {:>7} {:>7} {:>7}   {:>9} {:>9} {:>9}",
        "app", "PMAP", "GMAP", "PBB", "NMAP", "BW minp", "BW TM", "BW TA"
    );
    for app in App::all() {
        let graph = app.core_graph();
        let (w, h) = app.mesh_dims();
        let problem = MappingProblem::new(graph, Topology::mesh(w, h, 1e9))?;

        let pmap_cost = problem.comm_cost(&pmap(&problem));
        let gmap_cost = problem.comm_cost(&gmap(&problem));
        let pbb_cost = pbb(&problem, &PbbOptions::default()).comm_cost;
        let nmap_out = map_single_path(&problem, &SinglePathOptions::default())?;

        // Minimum uniform link capacity this mapping needs under each
        // routing regime (Figure 4's metric).
        let bw_minp = nmap_out.link_loads.max();
        let bw_tm =
            solve_mcf(&problem, &nmap_out.mapping, McfKind::MinMaxLoad, PathScope::Quadrant)?
                .objective;
        let bw_ta =
            solve_mcf(&problem, &nmap_out.mapping, McfKind::MinMaxLoad, PathScope::AllPaths)?
                .objective;

        println!(
            "{:>6} {:>7.0} {:>7.0} {:>7.0} {:>7.0}   {:>9.0} {:>9.0} {:>9.0}",
            app.name(),
            pmap_cost,
            gmap_cost,
            pbb_cost,
            nmap_out.comm_cost,
            bw_minp,
            bw_tm,
            bw_ta
        );
    }
    println!("\ncosts in hops x MB/s; BW columns in MB/s (lower is better everywhere)");
    println!("TM = split over minimal paths (low jitter), TA = split over all paths");
    Ok(())
}
