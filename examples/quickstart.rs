//! Quickstart: map a small application onto a mesh NoC with NMAP.
//!
//! Builds the paper's Video Object Plane Decoder core graph (Figure 1),
//! maps it onto a 4×4 mesh with 1 GB/s links using single-minimum-path
//! NMAP, and prints the mapping, its communication cost and the hottest
//! link.
//!
//! Run with: `cargo run --release --example quickstart`

use nmap_suite::apps;
use nmap_suite::graph::Topology;
use nmap_suite::nmap::{map_single_path, MappingProblem, SinglePathOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The application: 16 cores, 20 communication edges (MB/s).
    let vopd = apps::vopd();
    println!(
        "application: VOPD — {} cores, {} edges, {:.0} MB/s aggregate demand",
        vopd.core_count(),
        vopd.edge_count(),
        vopd.total_bandwidth()
    );

    // The platform: a 4x4 mesh with 1 GB/s links.
    let mesh = Topology::mesh(4, 4, 1_000.0);
    let problem = MappingProblem::new(vopd, mesh)?;

    // NMAP with single minimum-path routing (Section 5 of the paper).
    let outcome = map_single_path(&problem, &SinglePathOptions::default())?;

    println!("\nmapping (core -> mesh node):");
    for (core, node) in outcome.mapping.assignments() {
        let (x, y) = problem.topology().coords(node);
        println!("  {:12} -> {node} at ({x}, {y})", problem.cores().name(core));
    }

    println!("\ncommunication cost (Eq. 7): {:.0} hops x MB/s", outcome.comm_cost);
    println!("bandwidth constraints satisfied: {}", outcome.feasible);
    println!("hottest link load: {:.0} MB/s", outcome.link_loads.max());
    println!(
        "candidate placements evaluated: {} (runs in well under a second)",
        outcome.evaluations
    );

    // Each commodity's route is available for the NoC's routing tables.
    let commodities = problem.commodities(&outcome.mapping);
    let longest = outcome.paths.iter().max_by_key(|p| p.hops()).expect("at least one commodity");
    let edge = problem.cores().edge(longest.edge);
    println!(
        "\nlongest route: {} -> {} ({} hops, {:.0} MB/s)",
        problem.cores().name(edge.src),
        problem.cores().name(edge.dst),
        longest.hops(),
        commodities[longest.edge.index()].value,
    );
    Ok(())
}
