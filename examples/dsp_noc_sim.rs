//! DSP-filter NoC simulation: the full Section 7.2 flow.
//!
//! Maps the 6-core DSP filter design onto a 3×2 mesh, derives single-path
//! and split-traffic routing tables, then runs the flit-level wormhole
//! simulator at a few link bandwidths to show the latency difference that
//! the paper's Figure 5(c) plots.
//!
//! Run with: `cargo run --release --example dsp_noc_sim`

use nmap_suite::graph::Topology;
use nmap_suite::sim::{SimConfig, Simulator};
use noc_experiments::fig5c::{design_dsp, flows_from_tables};

fn main() {
    let design = design_dsp();
    println!("DSP filter design (Table 3):");
    println!("  min-path link bandwidth needed: {:.0} MB/s", design.minpath_bw);
    println!("  split-traffic link bandwidth:   {:.0} MB/s", design.split_bw);

    println!("\nmapping:");
    for (core, node) in design.mapping.assignments() {
        let (x, y) = design.problem.topology().coords(node);
        println!("  {:8} -> ({x}, {y})", design.problem.cores().name(core));
    }

    println!("\nrouting tables (split design):");
    for c in design.problem.commodities(&design.mapping) {
        let routes = design.split_tables.routes_of(c.edge);
        let e = design.problem.cores().edge(c.edge);
        println!(
            "  {:8} -> {:8} {:4.0} MB/s over {} path(s)",
            design.problem.cores().name(e.src),
            design.problem.cores().name(e.dst),
            c.value,
            routes.len()
        );
    }

    println!("\nwormhole simulation (64 B packets, 7-cycle switches, bursty sources):");
    println!("{:>10} {:>12} {:>12}", "BW (GB/s)", "minp (cy)", "split (cy)");
    for bw in [1_100.0, 1_400.0, 1_800.0] {
        let topology = Topology::mesh(3, 2, bw);
        let mut latencies = Vec::new();
        for tables in [&design.minpath_tables, &design.split_tables] {
            let flows = flows_from_tables(&design.problem, &design.mapping, tables);
            let mut sim = Simulator::new(&topology, flows, SimConfig::default());
            let report = sim.run();
            latencies.push(report.avg_latency_cycles());
        }
        println!("{:>10.1} {:>12.1} {:>12.1}", bw / 1000.0, latencies[0], latencies[1]);
    }
    println!("\nsplit routing absorbs bursts that single-path routing queues up.");
}
