//! Design-space exploration: mesh vs torus, sizes and routing regimes —
//! the "fast and efficient design space exploration for NoC topology
//! selection" extension the paper's conclusions call for.
//!
//! Maps the MPEG-4 decoder onto a range of candidate topologies and
//! reports, for each: communication cost, minimum link bandwidth under
//! single-path and split routing, and the mapper's runtime. This is the
//! kind of sweep a SoC architect would run before committing to a fabric.
//!
//! Run with: `cargo run --release --example design_space`

use std::time::Instant;

use nmap_suite::apps;
use nmap_suite::graph::Topology;
use nmap_suite::nmap::{
    map_single_path, mcf::solve_mcf, MappingProblem, McfKind, PathScope, SinglePathOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = apps::mpeg4();
    println!(
        "exploring topologies for the MPEG-4 decoder ({} cores, {:.0} MB/s demand)\n",
        app.core_count(),
        app.total_bandwidth()
    );
    println!(
        "{:>12} {:>7} {:>10} {:>10} {:>10} {:>9}",
        "topology", "nodes", "cost", "BW minp", "BW split", "time"
    );

    let candidates: Vec<(String, Topology)> = vec![
        ("mesh 4x4".into(), Topology::mesh(4, 4, 1e9)),
        ("mesh 5x3".into(), Topology::mesh(5, 3, 1e9)),
        ("mesh 7x2".into(), Topology::mesh(7, 2, 1e9)),
        ("mesh 5x4".into(), Topology::mesh(5, 4, 1e9)),
        ("torus 4x4".into(), Topology::torus(4, 4, 1e9)),
        ("torus 5x3".into(), Topology::torus(5, 3, 1e9)),
    ];

    for (name, topology) in candidates {
        let nodes = topology.node_count();
        let problem = MappingProblem::new(app.clone(), topology)?;
        let start = Instant::now();
        let outcome = map_single_path(&problem, &SinglePathOptions::default())?;
        let bw_split =
            solve_mcf(&problem, &outcome.mapping, McfKind::MinMaxLoad, PathScope::AllPaths)?
                .objective;
        let elapsed = start.elapsed();
        println!(
            "{:>12} {:>7} {:>10.0} {:>10.0} {:>10.0} {:>8.0?}",
            name,
            nodes,
            outcome.comm_cost,
            outcome.link_loads.max(),
            bw_split,
            elapsed
        );
    }

    println!("\ntori trade extra links for lower cost; splitting halves the link budget.");
    println!("NMAP is fast enough to sweep every candidate fabric in seconds.");
    Ok(())
}
